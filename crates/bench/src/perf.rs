//! The measured perf suite and its CI regression gate.
//!
//! [`run_suite`] executes a fixed LUBM + synthetic-DBpedia workload (the
//! group-1 queries) across all four strategies and both engines, once
//! sequentially and once with the configured worker count, and records
//! wall times plus the deterministic join-space metrics. The result
//! serializes to the `BENCH_PR2.json` artifact — the schema every future
//! PR's bench trajectory builds on (see README, "Benchmarking & perf CI").
//!
//! [`check_regressions`] compares a current artifact against a checked-in
//! baseline. Sequential wall times are compared *after normalizing by the
//! median current/baseline ratio* — CI runners and developer machines
//! differ in absolute speed, but a single query regressing relative to the
//! rest of the suite shows up in its ratio. (Parallel times are recorded
//! but not gated: they scale with the host's core count per-query, which a
//! single calibration factor cannot absorb.) Deterministic metrics (result
//! counts, BGP evaluations, join space) must match exactly; they catch
//! semantic regressions that timing noise would hide.

use crate::{dbpedia_store, group1, scale};
use std::time::Instant;
use uo_core::{run_query_with, Parallelism, Strategy};
use uo_datagen::Dataset;
use uo_engine::{BgpEngine, BinaryJoinEngine, WcoEngine};
use uo_json::{self as json, Json};
use uo_store::TripleStore;

/// Artifact schema identifier; bump when the layout changes.
pub const SCHEMA: &str = "uo-perf/1";

/// One (dataset, query, engine, strategy) measurement.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Dataset label ("lubm" / "dbpedia").
    pub dataset: String,
    /// The paper's query id, e.g. "q1.3".
    pub query: String,
    /// Engine name ("wco" / "binary").
    pub engine: String,
    /// Strategy label ("base" / "TT" / "CP" / "full").
    pub strategy: String,
    /// Best-of-`repeats` wall time, sequential (1 worker), in ms.
    pub wall_ms_seq: f64,
    /// Best-of-`repeats` wall time at the configured worker count, in ms.
    pub wall_ms_par: f64,
    /// Number of results (deterministic).
    pub results: usize,
    /// The run's join space `JS(Q)` (deterministic).
    pub join_space: f64,
    /// Number of BGP evaluations performed (deterministic).
    pub bgp_evals: usize,
}

/// A full suite run ready for serialization.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Worker count of the parallel measurements.
    pub threads: usize,
    /// The host's available parallelism when the suite ran.
    pub host_threads: usize,
    /// The `UO_SCALE` dataset multiplier the suite ran at.
    pub uo_scale: f64,
    /// Repeats per measurement (wall times are the minimum).
    pub repeats: usize,
    /// All measurements.
    pub entries: Vec<PerfEntry>,
}

impl PerfReport {
    /// Total sequential wall time across all entries, ms.
    pub fn total_seq_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_seq).sum()
    }

    /// Total parallel wall time across all entries, ms.
    pub fn total_par_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_par).sum()
    }

    /// Serializes to the `BENCH_PR2.json` layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", SCHEMA));
        out.push_str("  \"bench\": \"perf_suite\",\n");
        out.push_str("  \"pr\": 2,\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"uo_scale\": {},\n", json::num(self.uo_scale)));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"total_seq_ms\": {},\n", json::num(self.total_seq_ms())));
        out.push_str(&format!("  \"total_par_ms\": {},\n", json::num(self.total_par_ms())));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"query\": \"{}\", \"engine\": \"{}\", \
                 \"strategy\": \"{}\", \"wall_ms_seq\": {}, \"wall_ms_par\": {}, \
                 \"results\": {}, \"join_space\": {}, \"bgp_evals\": {}}}{}\n",
                json::escape(&e.dataset),
                json::escape(&e.query),
                json::escape(&e.engine),
                json::escape(&e.strategy),
                json::num(e.wall_ms_seq),
                json::num(e.wall_ms_par),
                e.results,
                json::num(e.join_space),
                e.bgp_evals,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn engine_pair(name: &str, threads: usize) -> (Box<dyn BgpEngine>, Box<dyn BgpEngine>) {
    match name {
        "wco" => (Box::new(WcoEngine::sequential()), Box::new(WcoEngine::with_threads(threads))),
        _ => (
            Box::new(BinaryJoinEngine::sequential()),
            Box::new(BinaryJoinEngine::with_threads(threads)),
        ),
    }
}

/// Runs the fixed workload. `threads` is the parallel worker count
/// (measurements at 1 worker are always taken as the sequential baseline);
/// wall times are best-of-`repeats`.
///
/// # Panics
/// Panics if any parallel run returns a bag that is not bit-identical to
/// the sequential run — determinism is part of the suite's contract.
pub fn run_suite(threads: usize, repeats: usize) -> PerfReport {
    let repeats = repeats.max(1);
    let datasets: Vec<(&str, Dataset, TripleStore)> = vec![
        ("lubm", Dataset::Lubm, crate::lubm_group1()),
        ("dbpedia", Dataset::Dbpedia, dbpedia_store()),
    ];
    let mut entries = Vec::new();
    for (ds_name, dataset, store) in &datasets {
        for q in group1(*dataset) {
            for strategy in Strategy::ALL {
                for eng_name in ["wco", "binary"] {
                    let (seq_engine, par_engine) = engine_pair(eng_name, threads);
                    let mut wall_ms_seq = f64::INFINITY;
                    let mut wall_ms_par = f64::INFINITY;
                    let mut reference = None;
                    for rep in 0..repeats {
                        // `RunReport::wall_nanos` is measured by the run
                        // itself (optimize + execute) — no external timer
                        // that would also count parse and bag teardown.
                        let seq = run_query_with(
                            store,
                            seq_engine.as_ref(),
                            q.text,
                            strategy,
                            Parallelism::sequential(),
                        )
                        .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
                        wall_ms_seq = wall_ms_seq.min(seq.wall_nanos as f64 / 1e6);
                        let par = run_query_with(
                            store,
                            par_engine.as_ref(),
                            q.text,
                            strategy,
                            Parallelism::new(threads),
                        )
                        .unwrap();
                        wall_ms_par = wall_ms_par.min(par.wall_nanos as f64 / 1e6);
                        if rep == 0 {
                            assert_eq!(
                                par.bag.rows, seq.bag.rows,
                                "parallel evaluation diverged on {}/{}/{}/{}",
                                ds_name, q.id, eng_name, strategy
                            );
                            reference = Some(seq);
                        }
                    }
                    let reference = reference.expect("at least one repeat ran");
                    entries.push(PerfEntry {
                        dataset: ds_name.to_string(),
                        query: q.id.to_string(),
                        engine: eng_name.to_string(),
                        strategy: strategy.label().to_string(),
                        wall_ms_seq,
                        wall_ms_par,
                        results: reference.results.len(),
                        join_space: reference.join_space,
                        bgp_evals: reference.exec_stats.bgp_evals,
                    });
                }
            }
        }
    }
    PerfReport {
        threads,
        host_threads: uo_par::default_threads(),
        uo_scale: scale(),
        repeats,
        entries,
    }
}

/// One top-k measurement: a LIMIT-bearing query executed with the row
/// budget / bounded top-k sort, against the naive
/// full-materialize-then-slice oracle.
#[derive(Debug, Clone)]
pub struct TopkEntry {
    /// Dataset label ("lubm").
    pub dataset: String,
    /// Workload query id, e.g. "tk1".
    pub query: String,
    /// Engine name ("wco" / "binary").
    pub engine: String,
    /// Strategy label ("base" / "full").
    pub strategy: String,
    /// Whether the query carries ORDER BY (bounded top-k sort path) or a
    /// plain LIMIT (row-budget early-termination path).
    pub ordered: bool,
    /// Best-of-`repeats` sequential wall time of the budgeted query, ms.
    pub wall_ms_budgeted: f64,
    /// Best-of-`repeats` sequential wall time of the naive oracle (LIMIT
    /// and OFFSET stripped, full materialization, slice applied by the
    /// harness), ms.
    pub wall_ms_naive: f64,
    /// Rows in the sliced result (deterministic).
    pub results: usize,
    /// BGP rows the budgeted run enumerated (deterministic; strictly below
    /// `rows_enumerated_full` for plain-LIMIT entries — the gate that
    /// proves work was skipped, not just timed).
    pub rows_enumerated: u64,
    /// BGP rows the naive run enumerated (deterministic).
    pub rows_enumerated_full: u64,
    /// Whether the budgeted run reported an early exit (always true here:
    /// every workload query's budget is below the full result count).
    pub short_circuit: bool,
}

/// The `BENCH_TOPK.json` artifact: LIMIT/OFFSET pushdown measured against
/// naive full materialization. Wall times are trajectory data; the
/// deterministic gates run inside [`run_topk_suite`] itself — budgeted
/// results byte-identical to the naive slice on both engines at 1/2/4
/// workers, `rows_enumerated` strictly below the naive run's for
/// plain-LIMIT entries, `short_circuit` reported everywhere.
#[derive(Debug, Clone)]
pub struct TopkReport {
    /// Worker counts the budgeted runs were verified at ({1, 2, 4}).
    pub threads: usize,
    /// Host parallelism when the suite ran.
    pub host_threads: usize,
    /// The `UO_SCALE` multiplier.
    pub uo_scale: f64,
    /// Repeats per measurement (wall times are the minimum).
    pub repeats: usize,
    /// All measurements.
    pub entries: Vec<TopkEntry>,
}

impl TopkReport {
    /// Total sequential budgeted wall time, ms.
    pub fn total_budgeted_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_budgeted).sum()
    }

    /// Total sequential naive wall time, ms.
    pub fn total_naive_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_naive).sum()
    }

    /// Serializes to the `BENCH_TOPK.json` layout (schema `uo-perf/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", SCHEMA));
        out.push_str("  \"bench\": \"perf_topk\",\n");
        out.push_str("  \"pr\": 9,\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"uo_scale\": {},\n", json::num(self.uo_scale)));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"total_budgeted_ms\": {},\n",
            json::num(self.total_budgeted_ms())
        ));
        out.push_str(&format!("  \"total_naive_ms\": {},\n", json::num(self.total_naive_ms())));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"query\": \"{}\", \"engine\": \"{}\", \
                 \"strategy\": \"{}\", \"ordered\": {}, \"wall_ms_budgeted\": {}, \
                 \"wall_ms_naive\": {}, \"results\": {}, \"rows_enumerated\": {}, \
                 \"rows_enumerated_full\": {}, \"short_circuit\": {}}}{}\n",
                json::escape(&e.dataset),
                json::escape(&e.query),
                json::escape(&e.engine),
                json::escape(&e.strategy),
                e.ordered,
                json::num(e.wall_ms_budgeted),
                json::num(e.wall_ms_naive),
                e.results,
                e.rows_enumerated,
                e.rows_enumerated_full,
                e.short_circuit,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One query of the top-k workload: the naive oracle text is
/// `base + order`, the budgeted text adds `LIMIT limit OFFSET offset`.
struct TopkQuery {
    id: &'static str,
    base: &'static str,
    order: &'static str,
    limit: usize,
    offset: usize,
}

const LUBM_PREFIX: &str = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

/// The top-k workload over the LUBM group-1 store: wide scans, an
/// expanding join and UNION fan-outs, with budgets far below the full
/// result counts — plain LIMIT exercises the row budget, ORDER BY + LIMIT
/// the bounded top-k sort (including an OFFSET past the heap's front).
fn topk_workload() -> Vec<TopkQuery> {
    vec![
        TopkQuery {
            id: "tk1-scan",
            base: "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c }",
            order: "",
            limit: 10,
            offset: 0,
        },
        TopkQuery {
            id: "tk2-join",
            base: "SELECT ?x ?c ?d WHERE { ?x ub:takesCourse ?c . ?x ub:memberOf ?d }",
            order: "",
            limit: 10,
            offset: 5,
        },
        TopkQuery {
            id: "tk3-union",
            base: "SELECT ?x ?d WHERE { { ?x ub:worksFor ?d } UNION { ?x ub:headOf ?d } }",
            order: "",
            limit: 5,
            offset: 0,
        },
        TopkQuery {
            id: "tk4-order-scan",
            base: "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c }",
            order: "ORDER BY DESC(?c) ?x",
            limit: 10,
            offset: 0,
        },
        TopkQuery {
            id: "tk5-order-union",
            base: "SELECT ?x ?d WHERE { { ?x ub:worksFor ?d } UNION { ?x ub:headOf ?d } }",
            order: "ORDER BY ?x ?d",
            limit: 5,
            offset: 5,
        },
    ]
}

/// Runs the top-k workload over the LUBM group-1 store and checks the
/// early-termination acceptance contract in-line.
///
/// # Panics
/// Panics if a budgeted run's results differ from the naive
/// full-materialize-then-slice oracle (any engine, base/full strategy,
/// 1/2/4 workers), if a plain-LIMIT entry fails to enumerate strictly
/// fewer rows than the naive run, if an ORDER BY entry's bounded sort
/// fails to report its eviction, or if `rows_enumerated`/`short_circuit`
/// vary with the worker count.
pub fn run_topk_suite(repeats: usize) -> TopkReport {
    let repeats = repeats.max(1);
    let store = crate::lubm_group1();
    let worker_counts = [1usize, 2, 4];
    let mut entries = Vec::new();
    for q in topk_workload() {
        let ordered = !q.order.is_empty();
        let naive_q = format!("{LUBM_PREFIX}{} {}", q.base, q.order);
        let budgeted_q = format!("{naive_q} LIMIT {} OFFSET {}", q.limit, q.offset);
        for strategy in [Strategy::Base, Strategy::Full] {
            for eng_name in ["wco", "binary"] {
                let mut wall_ms_naive = f64::INFINITY;
                let mut wall_ms_budgeted = f64::INFINITY;
                let mut reference: Option<(u64, bool)> = None;
                let (seq_engine, _) = engine_pair(eng_name, 1);
                let naive = run_query_with(
                    &store,
                    seq_engine.as_ref(),
                    &naive_q,
                    strategy,
                    Parallelism::sequential(),
                )
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
                let want: Vec<_> =
                    naive.results.iter().skip(q.offset).take(q.limit).cloned().collect();
                assert!(
                    q.offset + q.limit < naive.results.len(),
                    "{}: workload budget must stay below the full result count ({})",
                    q.id,
                    naive.results.len()
                );
                for rep in 0..repeats {
                    for &workers in &worker_counts {
                        let (_, engine) = engine_pair(eng_name, workers);
                        let budgeted = run_query_with(
                            &store,
                            engine.as_ref(),
                            &budgeted_q,
                            strategy,
                            Parallelism::new(workers),
                        )
                        .unwrap();
                        assert_eq!(
                            budgeted.results, want,
                            "{}/{}/{} at {} workers: budgeted run diverged from the naive slice",
                            q.id, eng_name, strategy, workers
                        );
                        assert!(
                            budgeted.exec_stats.short_circuit,
                            "{}/{}/{}: early exit not reported",
                            q.id, eng_name, strategy
                        );
                        if ordered {
                            assert_eq!(
                                budgeted.exec_stats.rows_enumerated,
                                naive.exec_stats.rows_enumerated,
                                "{}: ORDER BY still materializes the full bag",
                                q.id
                            );
                        } else {
                            assert!(
                                budgeted.exec_stats.rows_enumerated
                                    < naive.exec_stats.rows_enumerated,
                                "{}/{}/{}: budgeted run enumerated {} rows, naive {} — \
                                 no work was skipped",
                                q.id,
                                eng_name,
                                strategy,
                                budgeted.exec_stats.rows_enumerated,
                                naive.exec_stats.rows_enumerated
                            );
                        }
                        let stats = (
                            budgeted.exec_stats.rows_enumerated,
                            budgeted.exec_stats.short_circuit,
                        );
                        match reference {
                            Some(seen) => assert_eq!(
                                seen, stats,
                                "{}: budget stats vary with the worker count",
                                q.id
                            ),
                            None => reference = Some(stats),
                        }
                        if workers == 1 {
                            wall_ms_budgeted =
                                wall_ms_budgeted.min(budgeted.wall_nanos as f64 / 1e6);
                        }
                    }
                    // Re-time the naive oracle alongside the budgeted runs
                    // so both walls see the same cache state.
                    let naive_wall = if rep == 0 {
                        naive.wall_nanos
                    } else {
                        run_query_with(
                            &store,
                            seq_engine.as_ref(),
                            &naive_q,
                            strategy,
                            Parallelism::sequential(),
                        )
                        .unwrap()
                        .wall_nanos
                    };
                    wall_ms_naive = wall_ms_naive.min(naive_wall as f64 / 1e6);
                }
                let (rows_enumerated, short_circuit) = reference.expect("at least one repeat ran");
                entries.push(TopkEntry {
                    dataset: "lubm".to_string(),
                    query: q.id.to_string(),
                    engine: eng_name.to_string(),
                    strategy: strategy.label().to_string(),
                    ordered,
                    wall_ms_budgeted,
                    wall_ms_naive,
                    results: want.len(),
                    rows_enumerated,
                    rows_enumerated_full: naive.exec_stats.rows_enumerated,
                    short_circuit,
                });
            }
        }
    }
    TopkReport {
        threads: *worker_counts.last().expect("non-empty"),
        host_threads: uo_par::default_threads(),
        uo_scale: scale(),
        repeats,
        entries,
    }
}

/// One query's profiling-on vs profiling-off measurement (sequential,
/// `full` strategy).
#[derive(Debug, Clone)]
pub struct ProfileOverheadEntry {
    /// Dataset label ("lubm" / "dbpedia").
    pub dataset: String,
    /// The paper's query id, e.g. "q1.3".
    pub query: String,
    /// Engine name ("wco" / "binary").
    pub engine: String,
    /// Best-of-`repeats` wall time with the profiler disabled, ms.
    pub wall_ms_off: f64,
    /// Best-of-`repeats` wall time with the profiler enabled, ms.
    pub wall_ms_on: f64,
    /// Result count (identical across both modes — gated).
    pub results: usize,
    /// Operator spans in the profiled run's tree.
    pub ops: usize,
}

/// The `BENCH_PR8.json` artifact: the observability layer's overhead
/// contract, measured. Every suite query executes from the same prepared
/// plan with the profiler off and on; the artifact records both wall times
/// so the trajectory shows what EXPLAIN ANALYZE costs. Timing is not gated
/// (CI noise) — the determinism gate is that both modes return identical
/// result counts and that profiling actually produced an operator tree.
#[derive(Debug, Clone)]
pub struct ProfileOverheadReport {
    /// Host parallelism when the suite ran.
    pub host_threads: usize,
    /// The `UO_SCALE` multiplier.
    pub uo_scale: f64,
    /// Repeats per measurement (wall times are the minimum).
    pub repeats: usize,
    /// All measurements.
    pub entries: Vec<ProfileOverheadEntry>,
}

impl ProfileOverheadReport {
    /// Total profiler-off wall time, ms.
    pub fn total_off_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_off).sum()
    }

    /// Total profiler-on wall time, ms.
    pub fn total_on_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_on).sum()
    }

    /// Suite-wide overhead of enabling the profiler, in percent.
    pub fn overhead_pct(&self) -> f64 {
        let off = self.total_off_ms();
        if off <= 0.0 {
            return 0.0;
        }
        (self.total_on_ms() / off - 1.0) * 100.0
    }

    /// Serializes to the `BENCH_PR8.json` layout (schema `uo-perf/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", SCHEMA));
        out.push_str("  \"bench\": \"profile_overhead\",\n");
        out.push_str("  \"pr\": 8,\n");
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"uo_scale\": {},\n", json::num(self.uo_scale)));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"total_off_ms\": {},\n", json::num(self.total_off_ms())));
        out.push_str(&format!("  \"total_on_ms\": {},\n", json::num(self.total_on_ms())));
        out.push_str(&format!("  \"overhead_pct\": {},\n", json::num(self.overhead_pct())));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"query\": \"{}\", \"engine\": \"{}\", \
                 \"wall_ms_off\": {}, \"wall_ms_on\": {}, \"results\": {}, \"ops\": {}}}{}\n",
                json::escape(&e.dataset),
                json::escape(&e.query),
                json::escape(&e.engine),
                json::num(e.wall_ms_off),
                json::num(e.wall_ms_on),
                e.results,
                e.ops,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn count_ops(p: &uo_core::OpProfile) -> usize {
    1 + p.children.iter().map(count_ops).sum::<usize>()
}

fn execute_with_profiler(
    store: &TripleStore,
    engine: &dyn BgpEngine,
    prepared: &uo_core::Prepared,
    profiler: uo_core::Profiler,
) -> uo_core::RunReport {
    uo_core::try_execute_prepared_profiled(
        &store.snapshot(),
        engine,
        prepared,
        Strategy::Full,
        Parallelism::sequential(),
        &uo_core::Cancellation::none(),
        profiler,
    )
    .expect("execution without a cancellation token cannot be cancelled")
}

/// Measures the profiler's overhead: each suite query is prepared and
/// optimized once (`full` strategy), then executed sequentially with the
/// profiler off and on, best-of-`repeats` each.
///
/// # Panics
/// Panics if the two modes disagree on the result count, or if a profiled
/// run fails to produce an operator span tree — the overhead numbers would
/// be meaningless.
pub fn run_profile_overhead(repeats: usize) -> ProfileOverheadReport {
    use uo_core::Profiler;
    let repeats = repeats.max(1);
    let datasets: Vec<(&str, Dataset, TripleStore)> = vec![
        ("lubm", Dataset::Lubm, crate::lubm_group1()),
        ("dbpedia", Dataset::Dbpedia, dbpedia_store()),
    ];
    let mut entries = Vec::new();
    for (ds_name, dataset, store) in &datasets {
        for q in group1(*dataset) {
            for eng_name in ["wco", "binary"] {
                let (engine, _) = engine_pair(eng_name, 1);
                let mut prepared = uo_core::prepare(&store.snapshot(), q.text)
                    .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
                uo_core::optimize_prepared(
                    &store.snapshot(),
                    engine.as_ref(),
                    &mut prepared,
                    Strategy::Full,
                );
                let mut wall_ms_off = f64::INFINITY;
                let mut wall_ms_on = f64::INFINITY;
                let mut results = None;
                let mut ops = 0;
                for _ in 0..repeats {
                    for profiler in [Profiler::off(), Profiler::on()] {
                        let report =
                            execute_with_profiler(store, engine.as_ref(), &prepared, profiler);
                        let ms = report.wall_nanos as f64 / 1e6;
                        if profiler.is_on() {
                            wall_ms_on = wall_ms_on.min(ms);
                            let root = report.op_profile.as_ref().unwrap_or_else(|| {
                                panic!("{}/{}: profiled run has no span tree", q.id, eng_name)
                            });
                            ops = count_ops(root);
                        } else {
                            wall_ms_off = wall_ms_off.min(ms);
                            assert!(report.op_profile.is_none(), "off-path must not profile");
                        }
                        match results {
                            Some(n) => assert_eq!(
                                n,
                                report.results.len(),
                                "{}/{}: profiling changed the result count",
                                q.id,
                                eng_name
                            ),
                            None => results = Some(report.results.len()),
                        }
                    }
                }
                entries.push(ProfileOverheadEntry {
                    dataset: ds_name.to_string(),
                    query: q.id.to_string(),
                    engine: eng_name.to_string(),
                    wall_ms_off,
                    wall_ms_on,
                    results: results.expect("at least one repeat ran"),
                    ops,
                });
            }
        }
    }
    ProfileOverheadReport {
        host_threads: uo_par::default_threads(),
        uo_scale: scale(),
        repeats,
        entries,
    }
}

/// One query's tracing-on vs tracing-off measurement (sequential, `full`
/// strategy).
#[derive(Debug, Clone)]
pub struct TraceOverheadEntry {
    /// Dataset label ("lubm" / "dbpedia").
    pub dataset: String,
    /// The paper's query id, e.g. "q1.3".
    pub query: String,
    /// Engine name ("wco" / "binary").
    pub engine: String,
    /// Best-of-`repeats` wall time with the span recorder disabled, ms.
    pub wall_ms_off: f64,
    /// Best-of-`repeats` wall time with the span recorder enabled, ms.
    pub wall_ms_on: f64,
    /// Result count (identical across both modes — gated).
    pub results: usize,
    /// Trace events recorded by the final traced run.
    pub events: usize,
}

/// The `BENCH_OBS_TRACE.json` artifact: the structured-tracing overhead
/// contract, measured. Every suite query executes through the same span
/// sites the server's request path uses (a root request span plus phase
/// children with annotations) with the recorder off and on; the artifact
/// records both wall times so the trajectory shows what `--trace` costs.
/// Timing is not gated (CI noise) — the determinism gate is that both
/// modes return identical result counts and that the traced runs actually
/// recorded events. The perf gate keeps gating the tracing-**off** times
/// via `BENCH.json`, so the disabled path stays the contract.
#[derive(Debug, Clone)]
pub struct TraceOverheadReport {
    /// Host parallelism when the suite ran.
    pub host_threads: usize,
    /// The `UO_SCALE` multiplier.
    pub uo_scale: f64,
    /// Repeats per measurement (wall times are the minimum).
    pub repeats: usize,
    /// All measurements.
    pub entries: Vec<TraceOverheadEntry>,
}

impl TraceOverheadReport {
    /// Total tracing-off wall time, ms.
    pub fn total_off_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_off).sum()
    }

    /// Total tracing-on wall time, ms.
    pub fn total_on_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_ms_on).sum()
    }

    /// Suite-wide overhead of enabling the span recorder, in percent.
    pub fn overhead_pct(&self) -> f64 {
        let off = self.total_off_ms();
        if off <= 0.0 {
            return 0.0;
        }
        (self.total_on_ms() / off - 1.0) * 100.0
    }

    /// Serializes to the `BENCH_OBS_TRACE.json` layout (schema `uo-perf/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", SCHEMA));
        out.push_str("  \"bench\": \"trace_overhead\",\n");
        out.push_str("  \"pr\": 10,\n");
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"uo_scale\": {},\n", json::num(self.uo_scale)));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"total_off_ms\": {},\n", json::num(self.total_off_ms())));
        out.push_str(&format!("  \"total_on_ms\": {},\n", json::num(self.total_on_ms())));
        out.push_str(&format!("  \"overhead_pct\": {},\n", json::num(self.overhead_pct())));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"query\": \"{}\", \"engine\": \"{}\", \
                 \"wall_ms_off\": {}, \"wall_ms_on\": {}, \"results\": {}, \"events\": {}}}{}\n",
                json::escape(&e.dataset),
                json::escape(&e.query),
                json::escape(&e.engine),
                json::num(e.wall_ms_off),
                json::num(e.wall_ms_on),
                e.results,
                e.events,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One execution through the request-path span sites: a root `request`
/// span, an `execute` child, and an annotated end — the same shape (and
/// therefore the same per-request recorder cost) as the server's
/// `handle_sparql`. Returns the result count.
fn execute_traced(
    store: &TripleStore,
    engine: &dyn BgpEngine,
    prepared: &uo_core::Prepared,
    tracer: &uo_obs::Tracer,
) -> usize {
    let root = tracer.start(0, "server", "request");
    let exec = tracer.start(root.id, "query", "execute");
    let report = execute_with_profiler(store, engine, prepared, uo_core::Profiler::off());
    let rows = report.results.len();
    tracer.end_with(exec, || vec![("rows", rows.to_string())]);
    tracer.end_with(root, || vec![("rows", rows.to_string())]);
    rows
}

/// Measures the span recorder's overhead: each suite query is prepared and
/// optimized once (`full` strategy), then executed sequentially through
/// the request-path span sites with the recorder off and on,
/// best-of-`repeats` each.
///
/// # Panics
/// Panics if the two modes disagree on the result count, or if a traced
/// run recorded no events — the overhead numbers would be meaningless.
pub fn run_trace_overhead(repeats: usize) -> TraceOverheadReport {
    let repeats = repeats.max(1);
    let datasets: Vec<(&str, Dataset, TripleStore)> = vec![
        ("lubm", Dataset::Lubm, crate::lubm_group1()),
        ("dbpedia", Dataset::Dbpedia, dbpedia_store()),
    ];
    let mut entries = Vec::new();
    for (ds_name, dataset, store) in &datasets {
        for q in group1(*dataset) {
            for eng_name in ["wco", "binary"] {
                let (engine, _) = engine_pair(eng_name, 1);
                let mut prepared = uo_core::prepare(&store.snapshot(), q.text)
                    .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
                uo_core::optimize_prepared(
                    &store.snapshot(),
                    engine.as_ref(),
                    &mut prepared,
                    Strategy::Full,
                );
                let mut wall_ms_off = f64::INFINITY;
                let mut wall_ms_on = f64::INFINITY;
                let mut results = None;
                let mut events = 0;
                for _ in 0..repeats {
                    for on in [false, true] {
                        let tracer = if on {
                            uo_obs::Tracer::enabled(65_536)
                        } else {
                            uo_obs::Tracer::off()
                        };
                        let t0 = Instant::now();
                        let rows = execute_traced(store, engine.as_ref(), &prepared, &tracer);
                        let ms = t0.elapsed().as_nanos() as f64 / 1e6;
                        if on {
                            wall_ms_on = wall_ms_on.min(ms);
                            events = tracer.event_count();
                            assert!(
                                events > 0,
                                "{}/{}: traced run recorded no events",
                                q.id,
                                eng_name
                            );
                        } else {
                            wall_ms_off = wall_ms_off.min(ms);
                            assert_eq!(tracer.event_count(), 0, "off-path must not record");
                        }
                        match results {
                            Some(n) => assert_eq!(
                                n, rows,
                                "{}/{}: tracing changed the result count",
                                q.id, eng_name
                            ),
                            None => results = Some(rows),
                        }
                    }
                }
                entries.push(TraceOverheadEntry {
                    dataset: ds_name.to_string(),
                    query: q.id.to_string(),
                    engine: eng_name.to_string(),
                    wall_ms_off,
                    wall_ms_on,
                    results: results.expect("at least one repeat ran"),
                    events,
                });
            }
        }
    }
    TraceOverheadReport {
        host_threads: uo_par::default_threads(),
        uo_scale: scale(),
        repeats,
        entries,
    }
}

/// Deterministic outcome of the durable re-run + recovery of the mixed
/// scenario (gated: recovery must be replay-exact and take the merge
/// path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Requests journaled by the durable run.
    pub journaled_ops: usize,
    /// Records replayed when the directory was reopened.
    pub recovered_ops: usize,
    /// Delta rows sorted across every replayed commit.
    pub replay_rows_sorted: usize,
    /// Base rows merged across every replayed commit.
    pub replay_rows_merged: usize,
}

/// One deterministic outcome of the mixed read/write scenario; two runs of
/// the scenario must agree on all of it regardless of worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedOutcome {
    /// Result count of every query execution, in order.
    pub query_results: Vec<usize>,
    /// Triple count after the final commit.
    pub triples_final: usize,
    /// Epoch after the final commit.
    pub epoch_final: u64,
    /// Delta rows sorted across all commits (merge contract: stays
    /// proportional to the deltas, not the store).
    pub rows_sorted: usize,
    /// Base rows merged across all commits.
    pub rows_merged: usize,
}

/// Timings of one mixed scenario run.
#[derive(Debug, Clone)]
pub struct MixedTiming {
    /// Total wall time in queries, ms.
    pub query_ms: f64,
    /// Total wall time in updates (apply + commit), ms.
    pub update_ms: f64,
}

/// The `BENCH_UPDATE.json` artifact: a 95/5 read/write mix over the LUBM
/// store, run once sequentially and once at the configured worker count.
/// Only the deterministic fields are gated (single-core CI containers make
/// wall times pure noise); the run itself aborts if the two worker counts
/// ever disagree on a deterministic outcome.
#[derive(Debug, Clone)]
pub struct UpdatePerfReport {
    /// Worker count of the parallel measurements.
    pub threads: usize,
    /// Host parallelism when the suite ran.
    pub host_threads: usize,
    /// The `UO_SCALE` multiplier.
    pub uo_scale: f64,
    /// Best-of-`repeats` timings.
    pub repeats: usize,
    /// Scenario shape: queries per update.
    pub queries_per_update: usize,
    /// Number of update rounds.
    pub rounds: usize,
    /// The deterministic outcome (identical at every worker count).
    pub outcome: MixedOutcome,
    /// The durable re-run's recovery outcome (replay-exact, merge path).
    pub recovery: RecoveryOutcome,
    /// Sequential timings (best of repeats).
    pub seq: MixedTiming,
    /// Parallel timings at `threads` workers (best of repeats).
    pub par: MixedTiming,
}

impl UpdatePerfReport {
    /// Serializes to the `BENCH_UPDATE.json` layout (schema `uo-perf/1`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"bench\": \"perf_update\",\n  \"pr\": 4,\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \"uo_scale\": {},\n  \
             \"repeats\": {},\n  \"queries_per_update\": {},\n  \"rounds\": {},\n  \
             \"queries_total\": {},\n  \"results_total\": {},\n  \"triples_final\": {},\n  \
             \"epoch_final\": {},\n  \"rows_sorted\": {},\n  \"rows_merged\": {},\n  \
             \"recovery\": {{\"journaled_ops\": {}, \"recovered_ops\": {}, \
             \"replay_rows_sorted\": {}, \"replay_rows_merged\": {}}},\n  \
             \"wall_ms\": {{\"query_seq\": {}, \"update_seq\": {}, \"query_par\": {}, \
             \"update_par\": {}}}\n}}\n",
            SCHEMA,
            self.threads,
            self.host_threads,
            json::num(self.uo_scale),
            self.repeats,
            self.queries_per_update,
            self.rounds,
            self.outcome.query_results.len(),
            self.outcome.query_results.iter().sum::<usize>(),
            self.outcome.triples_final,
            self.outcome.epoch_final,
            self.outcome.rows_sorted,
            self.outcome.rows_merged,
            self.recovery.journaled_ops,
            self.recovery.recovered_ops,
            self.recovery.replay_rows_sorted,
            self.recovery.replay_rows_merged,
            json::num(self.seq.query_ms),
            json::num(self.seq.update_ms),
            json::num(self.par.query_ms),
            json::num(self.par.update_ms),
        )
    }
}

/// Queries per update in the mixed scenario (a 95/5 read/write mix).
const MIXED_QUERIES_PER_UPDATE: usize = 19;
/// Update rounds in the mixed scenario.
const MIXED_ROUNDS: usize = 8;
/// Triples inserted per update round.
const MIXED_BATCH: usize = 25;

/// The write slice of round `round`: every third round cleans up via
/// DELETE WHERE, otherwise a batch insert of tagged triples.
fn mixed_update_request(round: usize) -> uo_sparql::UpdateRequest {
    if round % 3 == 2 {
        uo_sparql::parse_update("DELETE WHERE { ?s <http://upd/tag> ?o }").unwrap()
    } else {
        let mut text = String::from("INSERT DATA {\n");
        for i in 0..MIXED_BATCH {
            text.push_str(&format!(
                "<http://upd/e{round}_{i}> <http://upd/tag> <http://upd/v{i}> .\n"
            ));
        }
        text.push('}');
        uo_sparql::parse_update(&text).unwrap()
    }
}

fn run_mixed_once(store: &TripleStore, workers: usize) -> (MixedOutcome, MixedTiming) {
    let par = Parallelism::new(workers);
    let engine = WcoEngine::with_threads(workers);
    let queries = group1(Dataset::Lubm);
    let mut writer = uo_store::StoreWriter::from_snapshot(store.snapshot());
    let mut outcome = MixedOutcome {
        query_results: Vec::new(),
        triples_final: 0,
        epoch_final: 0,
        rows_sorted: 0,
        rows_merged: 0,
    };
    let (mut query_ms, mut update_ms) = (0.0f64, 0.0f64);
    let mut qi = 0usize;
    for round in 0..MIXED_ROUNDS {
        let snapshot = writer.snapshot();
        for _ in 0..MIXED_QUERIES_PER_UPDATE {
            let q = &queries[qi % queries.len()];
            qi += 1;
            let t = Instant::now();
            let report = run_query_with(&snapshot, &engine, q.text, Strategy::Full, par)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
            query_ms += t.elapsed().as_secs_f64() * 1e3;
            outcome.query_results.push(report.results.len());
        }
        let t = Instant::now();
        let request = mixed_update_request(round);
        uo_core::run_update(&mut writer, &engine, &request, par);
        update_ms += t.elapsed().as_secs_f64() * 1e3;
        let cs = writer.last_commit();
        outcome.rows_sorted += cs.rows_sorted;
        outcome.rows_merged += cs.rows_merged;
    }
    let final_snap = writer.snapshot();
    outcome.triples_final = final_snap.len();
    outcome.epoch_final = final_snap.epoch();
    (outcome, MixedTiming { query_ms, update_ms })
}

/// Re-runs the mixed scenario's update stream through a [`DurableStore`]
/// in a throwaway directory, reopens it, and asserts the acceptance
/// contract: recovery is **replay-exact** (same triples, same epoch as the
/// in-memory reference) and the replay reuses the O(K) level-append path —
/// the per-commit [`CommitStats`](uo_store::CommitStats), plumbed through
/// replay, bound both the sorted and the merged rows by the deltas, never
/// the base.
fn run_mixed_durable_recovery(store: &TripleStore, reference: &MixedOutcome) -> RecoveryOutcome {
    use uo_store::DurableOptions;
    let engine = WcoEngine::sequential();
    let par = Parallelism::sequential();
    let dir = std::env::temp_dir().join(format!("uo_perf_update_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut outcome = RecoveryOutcome::default();
    {
        let mut ds = uo_core::open_durable(&dir, DurableOptions::default(), &engine, par)
            .expect("open durable store");
        ds.seed(store.snapshot()).expect("seed durable store");
        for round in 0..MIXED_ROUNDS {
            let request = mixed_update_request(round);
            uo_core::run_update_durable(&mut ds, &engine, &request, par).expect("durable update");
        }
        outcome.journaled_ops = ds.wal_stats().records as usize;
        let live = ds.snapshot();
        assert_eq!(
            (live.len(), live.epoch()),
            (reference.triples_final, reference.epoch_final),
            "durable run diverged from the in-memory reference"
        );
    }
    let ds = uo_core::open_durable(&dir, DurableOptions::default(), &engine, par)
        .expect("reopen durable store");
    let recovered = ds.snapshot();
    assert_eq!(
        (recovered.len(), recovered.epoch()),
        (reference.triples_final, reference.epoch_final),
        "recovery is not replay-exact"
    );
    let r = ds.recovery();
    outcome.recovered_ops = r.replayed_ops;
    outcome.replay_rows_sorted = r.replay_rows_sorted;
    outcome.replay_rows_merged = r.replay_rows_merged;
    assert_eq!(outcome.recovered_ops, outcome.journaled_ops);
    // The tiered-commit contract, across recovery: replay sorts and merges
    // only delta rows (3 permutations, at most 2 commits per DELETE WHERE
    // round) — a commit appends one level and never rewrites the base.
    assert!(
        outcome.replay_rows_sorted <= MIXED_ROUNDS * 6 * MIXED_BATCH,
        "recovery replay sorted {} rows — level-append path not taken",
        outcome.replay_rows_sorted
    );
    assert!(
        outcome.replay_rows_merged <= MIXED_ROUNDS * 6 * MIXED_BATCH,
        "recovery replay merged {} rows — the base was rewritten",
        outcome.replay_rows_merged
    );
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// Runs the mixed read/write scenario sequentially and at `threads`
/// workers, best-of-`repeats` timings, then once more durably (journal +
/// recover, via the private `run_mixed_durable_recovery` helper).
///
/// # Panics
/// Panics if the parallel run's deterministic outcome (every query's result
/// count, the final triple count/epoch, the commit accounting) differs from
/// the sequential run, if any commit re-sorted more rows than the deltas
/// account for, or if durable recovery is not replay-exact.
pub fn run_update_suite(threads: usize, repeats: usize) -> UpdatePerfReport {
    let repeats = repeats.max(1);
    let store = crate::lubm_group1();
    let mut reference: Option<MixedOutcome> = None;
    let best = |timings: &mut MixedTiming, t: MixedTiming| {
        timings.query_ms = timings.query_ms.min(t.query_ms);
        timings.update_ms = timings.update_ms.min(t.update_ms);
    };
    let mut seq = MixedTiming { query_ms: f64::INFINITY, update_ms: f64::INFINITY };
    let mut par = MixedTiming { query_ms: f64::INFINITY, update_ms: f64::INFINITY };
    for _ in 0..repeats {
        for (workers, slot) in [(1usize, &mut seq), (threads, &mut par)] {
            let (outcome, timing) = run_mixed_once(&store, workers);
            match &reference {
                Some(r) => assert_eq!(
                    *r, outcome,
                    "mixed scenario diverged at {workers} worker(s) — updates must be \
                     bit-deterministic"
                ),
                None => {
                    // Tiered-commit contract: commits sort and merge only
                    // delta rows. Every round touches at most MIXED_BATCH
                    // triples per index (x3 indexes, x2 commits for the
                    // flush in DELETE WHERE rounds), while the base store —
                    // orders of magnitude larger — is never rewritten.
                    assert!(
                        outcome.rows_sorted <= MIXED_ROUNDS * 6 * MIXED_BATCH,
                        "commits re-sorted {} rows — level-append path not taken",
                        outcome.rows_sorted
                    );
                    assert!(
                        outcome.rows_merged <= MIXED_ROUNDS * 6 * MIXED_BATCH,
                        "commits merged {} rows — the base was rewritten",
                        outcome.rows_merged
                    );
                    reference = Some(outcome);
                }
            }
            best(slot, timing);
        }
    }
    let outcome = reference.expect("at least one repeat ran");
    let recovery = run_mixed_durable_recovery(&store, &outcome);
    UpdatePerfReport {
        threads,
        host_threads: uo_par::default_threads(),
        uo_scale: scale(),
        repeats,
        queries_per_update: MIXED_QUERIES_PER_UPDATE,
        rounds: MIXED_ROUNDS,
        outcome,
        recovery,
        seq,
        par,
    }
}

/// One fsync policy's measurements in the WAL commit-latency scenario.
#[derive(Debug, Clone)]
pub struct WalPolicyEntry {
    /// Policy label ("always" / "every-8" / "never").
    pub fsync: String,
    /// Updates applied (= journal appends).
    pub updates: usize,
    /// Total wall time across all updates (apply + journal + fsync), ms.
    pub wall_ms_total: f64,
    /// Median per-update latency, µs.
    pub p50_us: f64,
    /// 99th-percentile per-update latency, µs.
    pub p99_us: f64,
    /// Triples after the final commit (deterministic, equal across
    /// policies).
    pub triples_final: usize,
    /// Epoch after the final commit (deterministic, equal across policies).
    pub epoch_final: u64,
    /// Records replayed when the directory was reopened (= `updates`).
    pub recovered_ops: usize,
}

/// The `BENCH_WAL.json` artifact: commit latency per fsync policy over the
/// LUBM store. Wall times are trajectory data only (single-core CI
/// containers, shared disks); the gates are determinism — every policy
/// must land on the identical final state, and reopening each directory
/// must recover it replay-exactly.
#[derive(Debug, Clone)]
pub struct WalPerfReport {
    /// Host parallelism when the suite ran.
    pub host_threads: usize,
    /// The `UO_SCALE` multiplier.
    pub uo_scale: f64,
    /// Update rounds per policy.
    pub rounds: usize,
    /// Triples inserted per update.
    pub batch: usize,
    /// One entry per fsync policy.
    pub entries: Vec<WalPolicyEntry>,
}

impl WalPerfReport {
    /// Serializes to the `BENCH_WAL.json` layout (schema `uo-perf/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", SCHEMA));
        out.push_str("  \"bench\": \"perf_wal\",\n");
        out.push_str("  \"pr\": 5,\n");
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"uo_scale\": {},\n", json::num(self.uo_scale)));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"batch\": {},\n", self.batch));
        out.push_str("  \"policies\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fsync\": \"{}\", \"updates\": {}, \"wall_ms_total\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"triples_final\": {}, \"epoch_final\": {}, \
                 \"recovered_ops\": {}}}{}\n",
                json::escape(&e.fsync),
                e.updates,
                json::num(e.wall_ms_total),
                json::num(e.p50_us),
                json::num(e.p99_us),
                e.triples_final,
                e.epoch_final,
                e.recovered_ops,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures per-update commit latency (apply + journal + fsync) under each
/// fsync policy, over a fresh durable store seeded with the LUBM fixture.
///
/// # Panics
/// Panics on any determinism violation: the policies disagreeing on the
/// final state, or a reopened directory not recovering it replay-exactly.
pub fn run_wal_suite(rounds: usize, batch: usize) -> WalPerfReport {
    use uo_store::{DurableOptions, FsyncPolicy};
    let store = crate::lubm_group1();
    let engine = WcoEngine::sequential();
    let par = Parallelism::sequential();
    let policies = [FsyncPolicy::Always, FsyncPolicy::EveryN(8), FsyncPolicy::Never];
    let mut entries = Vec::new();
    for policy in policies {
        let dir = std::env::temp_dir().join(format!(
            "uo_perf_wal_{}_{}",
            std::process::id(),
            policy.label()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions { fsync: policy, ..DurableOptions::default() };
        let mut latencies_us = Vec::with_capacity(rounds);
        let (triples_final, epoch_final) = {
            let mut ds =
                uo_core::open_durable(&dir, opts, &engine, par).expect("open durable store");
            ds.seed(store.snapshot()).expect("seed durable store");
            for round in 0..rounds {
                let mut text = String::from("INSERT DATA {\n");
                for i in 0..batch {
                    text.push_str(&format!(
                        "<http://wal/e{round}_{i}> <http://wal/tag> <http://wal/v{i}> .\n"
                    ));
                }
                text.push('}');
                let request = uo_sparql::parse_update(&text).unwrap();
                let t = Instant::now();
                uo_core::run_update_durable(&mut ds, &engine, &request, par)
                    .expect("durable update");
                latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
            ds.sync().expect("final sync");
            let snap = ds.snapshot();
            (snap.len(), snap.epoch())
        };
        // Determinism gate 1: reopen must recover the exact final state.
        let ds = uo_core::open_durable(&dir, opts, &engine, par).expect("reopen durable store");
        let recovered = ds.snapshot();
        assert_eq!(
            (recovered.len(), recovered.epoch()),
            (triples_final, epoch_final),
            "policy {} did not recover replay-exactly",
            policy.label()
        );
        let recovered_ops = ds.recovery().replayed_ops;
        assert_eq!(recovered_ops, rounds, "policy {}: one record per update", policy.label());
        let _ = std::fs::remove_dir_all(&dir);

        let wall_ms_total = latencies_us.iter().sum::<f64>() / 1e3;
        latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        entries.push(WalPolicyEntry {
            fsync: policy.label(),
            updates: rounds,
            wall_ms_total,
            p50_us: crate::percentile(&latencies_us, 50.0),
            p99_us: crate::percentile(&latencies_us, 99.0),
            triples_final,
            epoch_final,
            recovered_ops,
        });
    }
    // Determinism gate 2: the fsync policy must not change a single bit of
    // the committed state, only when it reaches stable storage.
    for pair in entries.windows(2) {
        assert_eq!(
            (pair[0].triples_final, pair[0].epoch_final),
            (pair[1].triples_final, pair[1].epoch_final),
            "policies {} and {} disagree on the final state",
            pair[0].fsync,
            pair[1].fsync
        );
    }
    WalPerfReport {
        host_threads: uo_par::default_threads(),
        uo_scale: scale(),
        rounds,
        batch,
        entries,
    }
}

/// Gate configuration. An entry fails the timing check only when it exceeds
/// **both** the relative tolerance and the absolute slack: short queries
/// wobble by large factors but tiny absolute amounts (scheduler noise),
/// while a real regression on a query that matters moves both.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated per-query slowdown beyond the suite-wide
    /// calibration ratio (0.25 = 25%).
    pub tolerance: f64,
    /// Entries faster than this (in either artifact) are exempt from the
    /// timing check — sub-millisecond measurements are noise-dominated.
    pub min_ms: f64,
    /// Minimum absolute excess (ms) over the calibrated expectation before
    /// a relative regression counts.
    pub abs_slack_ms: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { tolerance: 0.25, min_ms: 1.0, abs_slack_ms: 5.0 }
    }
}

fn entry_key(e: &Json) -> Option<String> {
    Some(format!(
        "{}/{}/{}/{}",
        e.get("dataset")?.as_str()?,
        e.get("query")?.as_str()?,
        e.get("engine")?.as_str()?,
        e.get("strategy")?.as_str()?
    ))
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if v.is_empty() {
        1.0
    } else {
        v[v.len() / 2]
    }
}

/// Compares a current perf artifact against a baseline. Returns the list of
/// failures (empty = gate passes), or an error when the artifacts are not
/// comparable at all (schema/scale mismatch, malformed JSON values).
pub fn check_regressions(
    current: &Json,
    baseline: &Json,
    cfg: GateConfig,
) -> Result<Vec<String>, String> {
    for (label, doc) in [("current", current), ("baseline", baseline)] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("{label}: unsupported schema {other:?}")),
        }
    }
    let cur_scale = current.get("uo_scale").and_then(Json::as_f64).unwrap_or(1.0);
    let base_scale = baseline.get("uo_scale").and_then(Json::as_f64).unwrap_or(1.0);
    if (cur_scale - base_scale).abs() > 1e-9 {
        return Err(format!(
            "scale mismatch: current ran at UO_SCALE={cur_scale}, baseline at \
             UO_SCALE={base_scale}; re-run the suite at the baseline's scale"
        ));
    }
    let empty: Vec<Json> = Vec::new();
    let cur_entries = current.get("entries").and_then(Json::as_arr).unwrap_or(&empty);
    let base_entries = baseline.get("entries").and_then(Json::as_arr).unwrap_or(&empty);
    if base_entries.is_empty() {
        return Err("baseline has no entries".to_string());
    }

    let mut cur_by_key = std::collections::BTreeMap::new();
    for e in cur_entries {
        if let Some(k) = entry_key(e) {
            cur_by_key.insert(k, e);
        }
    }

    let mut failures = Vec::new();
    let mut ratios = Vec::new();
    let mut timed: Vec<(String, f64, f64, f64)> = Vec::new();
    for base in base_entries {
        let Some(key) = entry_key(base) else {
            return Err("baseline entry missing key fields".to_string());
        };
        let Some(cur) = cur_by_key.get(&key) else {
            failures.push(format!("{key}: present in baseline but missing from current run"));
            continue;
        };
        // Deterministic metrics must match exactly.
        for field in ["results", "bgp_evals"] {
            let b = base.get(field).and_then(Json::as_f64);
            let c = cur.get(field).and_then(Json::as_f64);
            if b != c {
                failures.push(format!("{key}: {field} changed from {b:?} to {c:?}"));
            }
        }
        let b_js = base.get("join_space").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let c_js = cur.get("join_space").and_then(Json::as_f64).unwrap_or(f64::NAN);
        if (b_js - c_js).abs() > 1e-6 * b_js.abs().max(1.0) {
            failures.push(format!("{key}: join_space changed from {b_js} to {c_js}"));
        }
        // Timing ratio, exempting noise-dominated entries. The gate reads
        // the *sequential* wall times: machine-speed differences between
        // the baseline host and the CI runner scale them uniformly (the
        // median calibrates that away), whereas parallel times scale by
        // each query's parallelizability — comparing those across hosts
        // with different core counts would flag phantom regressions. The
        // engines share one scan/join implementation between the
        // sequential and parallel paths, so code regressions show up in
        // sequential times too; `wall_ms_par` stays in the artifact for
        // trajectory tracking.
        let b_ms = base.get("wall_ms_seq").and_then(Json::as_f64).unwrap_or(0.0);
        let c_ms = cur.get("wall_ms_seq").and_then(Json::as_f64).unwrap_or(0.0);
        if b_ms >= cfg.min_ms && c_ms >= cfg.min_ms {
            let ratio = c_ms / b_ms;
            ratios.push(ratio);
            timed.push((key, ratio, b_ms, c_ms));
        }
    }
    // Normalize by the suite-wide median ratio: machines differ in absolute
    // speed, but a genuine single-query regression sticks out of the
    // distribution.
    let calibration = median(ratios);
    for (key, ratio, b_ms, c_ms) in timed {
        let excess_ms = c_ms - b_ms * calibration;
        if ratio > calibration * (1.0 + cfg.tolerance) && excess_ms > cfg.abs_slack_ms {
            failures.push(format!(
                "{key}: wall time regressed {:.0}% / {excess_ms:.1} ms beyond the suite median \
                 (ratio {ratio:.2} vs calibration {calibration:.2}, tolerance {:.0}% and \
                 {:.1} ms)",
                (ratio / calibration - 1.0) * 100.0,
                cfg.tolerance * 100.0,
                cfg.abs_slack_ms
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(entries: &[(&str, f64, f64, usize)]) -> Json {
        // (query, wall_ms_par, join_space, results)
        let body: Vec<String> = entries
            .iter()
            .map(|(q, ms, js, n)| {
                format!(
                    "{{\"dataset\": \"lubm\", \"query\": \"{q}\", \"engine\": \"wco\", \
                     \"strategy\": \"full\", \"wall_ms_seq\": {ms}, \"wall_ms_par\": {ms}, \
                     \"results\": {n}, \"join_space\": {js}, \"bgp_evals\": 3}}"
                )
            })
            .collect();
        json::parse(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"uo_scale\": 1, \"entries\": [{}]}}",
            body.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(&[("q1.1", 10.0, 100.0, 5), ("q1.2", 20.0, 200.0, 7)]);
        let failures = check_regressions(&a, &a, GateConfig::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn uniform_slowdown_is_calibrated_away() {
        let base = artifact(&[("q1.1", 10.0, 100.0, 5), ("q1.2", 20.0, 200.0, 7)]);
        // A 3x-slower machine: every entry scales equally.
        let cur = artifact(&[("q1.1", 30.0, 100.0, 5), ("q1.2", 60.0, 200.0, 7)]);
        let failures = check_regressions(&cur, &base, GateConfig::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn single_query_regression_fails() {
        let base =
            artifact(&[("q1.1", 10.0, 100.0, 5), ("q1.2", 20.0, 200.0, 7), ("q1.3", 5.0, 1.0, 1)]);
        let cur =
            artifact(&[("q1.1", 10.0, 100.0, 5), ("q1.2", 80.0, 200.0, 7), ("q1.3", 5.0, 1.0, 1)]);
        let failures = check_regressions(&cur, &base, GateConfig::default()).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("q1.2"));
    }

    #[test]
    fn semantic_changes_fail_regardless_of_timing() {
        let base = artifact(&[("q1.1", 10.0, 100.0, 5)]);
        let cur = artifact(&[("q1.1", 10.0, 400.0, 6)]);
        let failures = check_regressions(&cur, &base, GateConfig::default()).unwrap();
        assert_eq!(failures.len(), 2, "join_space and results both flagged: {failures:?}");
    }

    #[test]
    fn missing_entry_fails() {
        let base = artifact(&[("q1.1", 10.0, 100.0, 5), ("q1.2", 20.0, 200.0, 7)]);
        let cur = artifact(&[("q1.1", 10.0, 100.0, 5)]);
        let failures = check_regressions(&cur, &base, GateConfig::default()).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn scale_mismatch_is_an_error() {
        let base = artifact(&[("q1.1", 10.0, 100.0, 5)]);
        let mut doc = base.clone();
        if let Json::Obj(m) = &mut doc {
            m.insert("uo_scale".to_string(), Json::Num(2.0));
        }
        assert!(check_regressions(&doc, &base, GateConfig::default()).is_err());
    }

    #[test]
    fn small_absolute_wobble_is_within_slack() {
        // 3 ms → 4.6 ms is a 53% relative jump but only 1.6 ms of excess:
        // scheduler noise, not a regression.
        let base = artifact(&[
            ("q1.1", 3.0, 100.0, 5),
            ("q1.2", 50.0, 200.0, 7),
            ("q1.3", 30.0, 300.0, 9),
        ]);
        let cur = artifact(&[
            ("q1.1", 4.6, 100.0, 5),
            ("q1.2", 50.0, 200.0, 7),
            ("q1.3", 30.0, 300.0, 9),
        ]);
        let failures = check_regressions(&cur, &base, GateConfig::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        // The same 53% on a 50 ms query is 26 ms of excess: a real failure.
        let cur2 = artifact(&[
            ("q1.1", 3.0, 100.0, 5),
            ("q1.2", 77.0, 200.0, 7),
            ("q1.3", 30.0, 300.0, 9),
        ]);
        let failures2 = check_regressions(&cur2, &base, GateConfig::default()).unwrap();
        assert_eq!(failures2.len(), 1, "{failures2:?}");
        assert!(failures2[0].contains("q1.2"));
    }

    #[test]
    fn sub_millisecond_noise_is_exempt() {
        let base = artifact(&[("q1.1", 0.01, 100.0, 5), ("q1.2", 20.0, 200.0, 7)]);
        // q1.1 "regressed" 50x but is below the noise floor.
        let cur = artifact(&[("q1.1", 0.5, 100.0, 5), ("q1.2", 20.0, 200.0, 7)]);
        let failures = check_regressions(&cur, &base, GateConfig::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn report_serializes_and_reparses() {
        let report = PerfReport {
            threads: 4,
            host_threads: 8,
            uo_scale: 0.25,
            repeats: 3,
            entries: vec![PerfEntry {
                dataset: "lubm".to_string(),
                query: "q1.1".to_string(),
                engine: "wco".to_string(),
                strategy: "full".to_string(),
                wall_ms_seq: 12.5,
                wall_ms_par: 4.5,
                results: 42,
                join_space: 1234.0,
                bgp_evals: 3,
            }],
        };
        let doc = json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("threads").unwrap().as_f64(), Some(4.0));
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("wall_ms_par").unwrap().as_f64(), Some(4.5));
        // The artifact is self-comparable through the gate.
        let failures = check_regressions(&doc, &doc, GateConfig::default()).unwrap();
        assert!(failures.is_empty());
    }

    #[test]
    fn topk_suite_skips_work_and_serializes() {
        // The suite self-gates: any budgeted/naive divergence, missing
        // short-circuit, or worker-count-dependent stat panics inside.
        let report = run_topk_suite(1);
        // 5 workload queries x {base, full} x {wco, binary}.
        assert_eq!(report.entries.len(), 20);
        for e in &report.entries {
            assert!(e.short_circuit, "{}: no early exit recorded", e.query);
            if e.ordered {
                assert_eq!(e.rows_enumerated, e.rows_enumerated_full, "{}", e.query);
            } else {
                assert!(
                    e.rows_enumerated < e.rows_enumerated_full,
                    "{}: enumerated {} of {}",
                    e.query,
                    e.rows_enumerated,
                    e.rows_enumerated_full
                );
            }
        }
        let doc = json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("perf_topk"));
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 20);
        assert_eq!(entries[0].get("short_circuit").unwrap().as_bool(), Some(true));
    }
}
