//! Regenerates Figure 12: execution time of `full` on q1.1–q1.6 over LUBM
//! datasets of growing size (the paper's 0.5B/1B/1.5B/2B sweep, scaled to
//! 2/4/6/8 universities).

use uo_bench::{group1, header, lubm_at, ms, row, run};
use uo_core::Strategy;
use uo_datagen::Dataset;
use uo_engine::WcoEngine;

fn main() {
    let engine = WcoEngine::new();
    let scales = [2usize, 4, 6, 8];
    let stores: Vec<_> = scales.iter().map(|&u| (u, lubm_at(u))).collect();
    println!("# Figure 12: scalability of `full` on LUBM\n");
    for (u, st) in &stores {
        println!("- {u} universities = {} triples", st.len());
    }
    println!();
    let mut cols = vec!["Query".to_string()];
    cols.extend(scales.iter().map(|u| format!("{u} univ (ms)")));
    header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for q in group1(Dataset::Lubm) {
        let mut cells = vec![q.id.to_string()];
        for (_, st) in &stores {
            let (_, total) = run(st, &engine, &q, Strategy::Full);
            cells.push(ms(total));
        }
        row(&cells);
    }
}
