//! Regenerates Figure 11: execution time and join space (JS) of q1.1–q1.6
//! per strategy. JS estimates the largest intermediate result materialized
//! (Section 7.1); smaller is better.

use uo_bench::{dbpedia_store, group1, header, lubm_group1, ms, row, run};
use uo_core::Strategy;
use uo_datagen::Dataset;
use uo_engine::WcoEngine;

fn main() {
    let engine = WcoEngine::new();
    for (ds_name, dataset, store) in
        [("LUBM", Dataset::Lubm, lubm_group1()), ("DBpedia", Dataset::Dbpedia, dbpedia_store())]
    {
        println!("\n# Figure 11: {ds_name} — time and join space per strategy\n");
        header(&["Query", "Strategy", "time (ms)", "join space (JS)"]);
        for q in group1(dataset) {
            for strategy in Strategy::ALL {
                let (report, total) = run(&store, &engine, &q, strategy);
                row(&[
                    q.id.to_string(),
                    strategy.to_string(),
                    ms(total),
                    format!("{:.3e}", report.join_space),
                ]);
            }
        }
    }
}
