//! Ablation (beyond the paper): merge-only vs inject-only vs both, isolating
//! the contribution of Theorem 1 (merge) and Theorem 2 (inject).

use std::time::Instant;
use uo_bench::{dbpedia_store, group1, header, lubm_group1, ms, row};
use uo_core::{evaluate, multi_level_transform, prepare, CostModel, OptimizerConfig, Pruning};
use uo_datagen::Dataset;
use uo_engine::WcoEngine;

fn main() {
    let engine = WcoEngine::new();
    for (ds_name, dataset, store) in
        [("LUBM", Dataset::Lubm, lubm_group1()), ("DBpedia", Dataset::Dbpedia, dbpedia_store())]
    {
        println!("\n# Ablation: transformation variants on {ds_name}\n");
        header(&[
            "Query",
            "none (ms)",
            "merge-only (ms)",
            "inject-only (ms)",
            "both (ms)",
            "merges",
            "injects",
        ]);
        for q in group1(dataset) {
            let mut cells = vec![q.id.to_string()];
            let mut merges = 0;
            let mut injects = 0;
            for cfg in [
                None,
                Some(OptimizerConfig::merge_only()),
                Some(OptimizerConfig::inject_only()),
                Some(OptimizerConfig::default()),
            ] {
                let mut prepared = prepare(&store, q.text).unwrap();
                let cm = CostModel::new(&store, &engine);
                let t = Instant::now();
                if let Some(cfg) = cfg {
                    let out = multi_level_transform(&mut prepared.tree, &cm, cfg);
                    if cfg.enable_merge && cfg.enable_inject {
                        merges = out.merges;
                        injects = out.injects;
                    }
                }
                let _ =
                    evaluate(&prepared.tree, &store, &engine, prepared.vars.len(), Pruning::Off);
                cells.push(ms(t.elapsed()));
            }
            cells.push(merges.to_string());
            cells.push(injects.to_string());
            row(&cells);
        }
    }
}
