//! Quantifies Figure 3's motivation: the naive binary-tree evaluation
//! (every triple pattern materialized independently) vs BGP-based `base`
//! vs `full`, on the benchmark queries.

use std::time::Instant;
use uo_bench::{dbpedia_store, group1, header, lubm_group1, ms, row, run};
use uo_core::{evaluate_binary_tree, prepare, Strategy};
use uo_datagen::Dataset;
use uo_engine::WcoEngine;

fn main() {
    let engine = WcoEngine::new();
    for (ds_name, dataset, store) in
        [("LUBM", Dataset::Lubm, lubm_group1()), ("DBpedia", Dataset::Dbpedia, dbpedia_store())]
    {
        println!("\n# Figure 3 strawman on {ds_name} ({} triples)\n", store.len());
        header(&[
            "Query",
            "binary-tree (ms)",
            "base (ms)",
            "full (ms)",
            "peak intermediate (binary-tree)",
        ]);
        for q in group1(dataset) {
            let prepared = prepare(&store, q.text).unwrap();
            let t = Instant::now();
            let (bt_bag, stats) = evaluate_binary_tree(&prepared.tree, &store, prepared.vars.len());
            let bt_time = t.elapsed();
            let (base_r, base_time) = run(&store, &engine, &q, Strategy::Base);
            let (_, full_time) = run(&store, &engine, &q, Strategy::Full);
            assert_eq!(
                bt_bag.canonicalized(),
                base_r.bag.canonicalized(),
                "binary-tree diverged on {}",
                q.id
            );
            row(&[
                q.id.to_string(),
                ms(bt_time),
                ms(base_time),
                ms(full_time),
                stats.peak_intermediate.to_string(),
            ]);
        }
    }
}
