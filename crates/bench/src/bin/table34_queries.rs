//! Regenerates Tables 3 and 4: per-query type (U/O/UO), BGP count, depth and
//! result size on LUBM and DBpedia.

use uo_bench::{dbpedia_store, header, lubm_group1, lubm_group2, row, run};
use uo_core::metrics::query_type;
use uo_core::{prepare, Strategy};
use uo_datagen::{queries_for, Dataset};
use uo_engine::WcoEngine;

fn main() {
    let engine = WcoEngine::new();
    let lubm1 = lubm_group1();
    let lubm2 = lubm_group2();
    let dbp = dbpedia_store();
    for (name, dataset) in
        [("Table 3 (LUBM)", Dataset::Lubm), ("Table 4 (DBpedia)", Dataset::Dbpedia)]
    {
        println!("\n# {name}: Query Statistics\n");
        header(&["Query", "Type", "Count_BGP", "Depth", "|[[Q]]_D|"]);
        for q in queries_for(dataset) {
            let store = match (dataset, q.group) {
                (Dataset::Lubm, 1) => &lubm1,
                (Dataset::Lubm, _) => &lubm2,
                (Dataset::Dbpedia, _) => &dbp,
            };
            let parsed = uo_sparql::parse(q.text).unwrap();
            let prepared = prepare(store, q.text).unwrap();
            let (report, _) = run(store, &engine, &q, Strategy::Full);
            row(&[
                q.id.to_string(),
                query_type(&parsed.body).to_string(),
                prepared.tree.bgp_count().to_string(),
                parsed.body.depth().to_string(),
                report.results.len().to_string(),
            ]);
        }
    }
}
