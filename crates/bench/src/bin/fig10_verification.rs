//! Regenerates Figure 10: execution time of base / TT / CP / full on
//! q1.1–q1.6, over both BGP engines and both datasets, plus the tree
//! transformation time for TT and full.

use uo_bench::{dbpedia_store, engines, group1, header, lubm_group1, ms, row, run};
use uo_core::Strategy;
use uo_datagen::Dataset;

fn main() {
    for (ds_name, dataset, store) in
        [("LUBM", Dataset::Lubm, lubm_group1()), ("DBpedia", Dataset::Dbpedia, dbpedia_store())]
    {
        for (engine_name, engine) in engines() {
            println!("\n# Figure 10: {engine_name}, {ds_name} ({} triples)\n", store.len());
            header(&[
                "Query",
                "base (ms)",
                "TT (ms)",
                "CP (ms)",
                "full (ms)",
                "TT transform (ms)",
                "full transform (ms)",
                "|results|",
            ]);
            for q in group1(dataset) {
                let mut cells = vec![q.id.to_string()];
                let mut tt_transform = String::new();
                let mut full_transform = String::new();
                let mut n_results = 0;
                for strategy in Strategy::ALL {
                    let (report, total) = run(&store, engine.as_ref(), &q, strategy);
                    cells.push(ms(total));
                    match strategy {
                        Strategy::TreeTransform => tt_transform = ms(report.transform_time),
                        Strategy::Full => full_transform = ms(report.transform_time),
                        _ => {}
                    }
                    n_results = report.results.len();
                }
                cells.push(tt_transform);
                cells.push(full_transform);
                cells.push(n_results.to_string());
                row(&cells);
            }
        }
    }
}
