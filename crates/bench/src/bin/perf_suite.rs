//! Runs the measured perf suite and emits the `BENCH_PR2.json` artifact,
//! plus the mixed read/write scenario's `BENCH_UPDATE.json`.
//!
//! ```text
//! perf_suite [--out BENCH_PR2.json] [--update-out BENCH_UPDATE.json]
//!            [--profile-out BENCH_PR8.json] [--topk-out BENCH_TOPK.json]
//!            [--trace-out BENCH_OBS_TRACE.json] [--threads N] [--repeat K]
//!            [--no-update] [--no-profile] [--no-topk] [--no-trace]
//! ```
//!
//! The query workload is fixed (LUBM + synthetic-DBpedia group-1 queries ×
//! four strategies × both engines); dataset size scales with `UO_SCALE`.
//! Every query runs sequentially and at the configured worker count; the
//! run aborts if the two ever disagree. The update scenario interleaves 19
//! queries with every commit (a 95/5 read/write mix over the MVCC writer)
//! and is determinism-gated only — wall times are recorded for trajectory
//! tracking, not gated (single-core CI containers). See `uo_bench::perf`
//! for the artifact schemas and `perf_gate` for the CI regression check.

use std::process::ExitCode;
use uo_bench::perf;
use uo_core::Parallelism;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag(&args, "--out").unwrap_or("BENCH_PR2.json").to_string();
    let threads = match flag(&args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --threads expects a positive integer, got '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => Parallelism::from_env().threads(),
    };
    let repeats = flag(&args, "--repeat")
        .or(std::env::var("UO_PERF_REPEAT").ok().as_deref())
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(3);

    eprintln!(
        "perf_suite: {} worker(s), {} repeat(s), UO_SCALE={} ...",
        threads,
        repeats,
        uo_bench::scale()
    );
    let report = perf::run_suite(threads, repeats);

    // Human-readable summary: per-dataset totals plus the headline speedup.
    uo_bench::header(&["dataset", "entries", "seq total (ms)", "par total (ms)", "speedup"]);
    for ds in ["lubm", "dbpedia"] {
        let entries: Vec<_> = report.entries.iter().filter(|e| e.dataset == ds).collect();
        let seq: f64 = entries.iter().map(|e| e.wall_ms_seq).sum();
        let par: f64 = entries.iter().map(|e| e.wall_ms_par).sum();
        uo_bench::row(&[
            ds.to_string(),
            entries.len().to_string(),
            format!("{seq:.3}"),
            format!("{par:.3}"),
            format!("{:.2}x", seq / par.max(1e-9)),
        ]);
    }
    let total_seq = report.total_seq_ms();
    let total_par = report.total_par_ms();
    eprintln!(
        "total: seq {total_seq:.1} ms, par {total_par:.1} ms ({:.2}x at {} worker(s), host has {})",
        total_seq / total_par.max(1e-9),
        report.threads,
        report.host_threads
    );
    if report.threads > 1 && report.host_threads == 1 {
        eprintln!("note: single-core host — parallel timings cannot beat sequential here");
    }

    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out} ({} entries)", report.entries.len());

    if !args.iter().any(|a| a == "--no-update") {
        let update_out = flag(&args, "--update-out").unwrap_or("BENCH_UPDATE.json").to_string();
        eprintln!("perf_suite: mixed read/write scenario (95/5, determinism-gated) ...");
        let update_report = perf::run_update_suite(threads, repeats);
        eprintln!(
            "mixed: {} queries + {} updates | query seq {:.1} ms / par {:.1} ms | \
             update seq {:.1} ms / par {:.1} ms | {} triples at epoch {} | \
             merge accounting: {} delta rows sorted vs {} base rows merged",
            update_report.outcome.query_results.len(),
            update_report.rounds,
            update_report.seq.query_ms,
            update_report.par.query_ms,
            update_report.seq.update_ms,
            update_report.par.update_ms,
            update_report.outcome.triples_final,
            update_report.outcome.epoch_final,
            update_report.outcome.rows_sorted,
            update_report.outcome.rows_merged,
        );
        if let Err(e) = std::fs::write(&update_out, update_report.to_json()) {
            eprintln!("error: failed to write {update_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {update_out}");
    }

    if !args.iter().any(|a| a == "--no-profile") {
        let profile_out = flag(&args, "--profile-out").unwrap_or("BENCH_PR8.json").to_string();
        eprintln!("perf_suite: profiling-on vs profiling-off overhead (sequential) ...");
        let profile_report = perf::run_profile_overhead(repeats);
        eprintln!(
            "profiling: off {:.1} ms, on {:.1} ms ({:+.1}% across {} entries)",
            profile_report.total_off_ms(),
            profile_report.total_on_ms(),
            profile_report.overhead_pct(),
            profile_report.entries.len(),
        );
        if let Err(e) = std::fs::write(&profile_out, profile_report.to_json()) {
            eprintln!("error: failed to write {profile_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {profile_out}");
    }

    if !args.iter().any(|a| a == "--no-trace") {
        let trace_out = flag(&args, "--trace-out").unwrap_or("BENCH_OBS_TRACE.json").to_string();
        eprintln!("perf_suite: tracing-on vs tracing-off overhead (sequential) ...");
        let trace_report = perf::run_trace_overhead(repeats);
        eprintln!(
            "tracing: off {:.1} ms, on {:.1} ms ({:+.1}% across {} entries)",
            trace_report.total_off_ms(),
            trace_report.total_on_ms(),
            trace_report.overhead_pct(),
            trace_report.entries.len(),
        );
        if let Err(e) = std::fs::write(&trace_out, trace_report.to_json()) {
            eprintln!("error: failed to write {trace_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {trace_out}");
    }

    if !args.iter().any(|a| a == "--no-topk") {
        let topk_out = flag(&args, "--topk-out").unwrap_or("BENCH_TOPK.json").to_string();
        eprintln!("perf_suite: top-k pushdown vs naive materialization (self-gated) ...");
        let topk_report = perf::run_topk_suite(repeats);
        let skipped: u64 =
            topk_report.entries.iter().map(|e| e.rows_enumerated_full - e.rows_enumerated).sum();
        eprintln!(
            "top-k: budgeted {:.1} ms vs naive {:.1} ms, {} rows skipped across {} entries",
            topk_report.total_budgeted_ms(),
            topk_report.total_naive_ms(),
            skipped,
            topk_report.entries.len(),
        );
        if let Err(e) = std::fs::write(&topk_out, topk_report.to_json()) {
            eprintln!("error: failed to write {topk_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {topk_out}");
    }
    ExitCode::SUCCESS
}
