//! Measures durable-commit latency per WAL fsync policy and emits the
//! `BENCH_WAL.json` artifact (schema `uo-perf/1`).
//!
//! ```text
//! perf_wal [--out BENCH_WAL.json] [--rounds N] [--batch N]
//! ```
//!
//! Each policy (`always`, `every-8`, `never`) gets a fresh durable store
//! seeded with the LUBM fixture; `--rounds` batch-INSERT updates are
//! applied and timed end-to-end (apply + journal + fsync), then the
//! directory is reopened to prove recovery is replay-exact. Only the
//! determinism contract is gated — identical final state across policies
//! and across a reopen; wall times are recorded for trajectory tracking
//! (single-core CI containers make them noise). See `uo_bench::perf`.

use std::process::ExitCode;
use uo_bench::perf;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag(&args, "--out").unwrap_or("BENCH_WAL.json").to_string();
    let num = |name: &str, default: usize| -> Result<usize, String> {
        match flag(&args, name) {
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{name} expects a positive integer, got '{v}'")),
            },
            None => Ok(default),
        }
    };
    let (rounds, batch) = match (num("--rounds", 48), num("--batch", 10)) {
        (Ok(r), Ok(b)) => (r, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "perf_wal: {rounds} update(s) x {batch} triple(s) per fsync policy, UO_SCALE={} ...",
        uo_bench::scale()
    );
    let report = perf::run_wal_suite(rounds, batch);

    uo_bench::header(&["fsync", "updates", "total (ms)", "p50 (us)", "p99 (us)", "recovered"]);
    for e in &report.entries {
        uo_bench::row(&[
            e.fsync.clone(),
            e.updates.to_string(),
            format!("{:.2}", e.wall_ms_total),
            format!("{:.1}", e.p50_us),
            format!("{:.1}", e.p99_us),
            e.recovered_ops.to_string(),
        ]);
    }
    eprintln!(
        "determinism: all policies at {} triples / epoch {}, recovery replay-exact",
        report.entries[0].triples_final, report.entries[0].epoch_final
    );

    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out} ({} policies)", report.entries.len());
    ExitCode::SUCCESS
}
