//! `prom_lint` — validates a Prometheus text-exposition (0.0.4) document
//! with a minimal, independent parser.
//!
//! ```text
//! prom_lint [file]        # reads the file, or stdin when absent
//! ```
//!
//! CI scrapes the server's `/metrics` with `Accept: text/plain` and pipes
//! the body through this binary, so the exposition the engine serves is
//! checked by a parser that shares **no code** with the renderer
//! (`uo_server::prom` / `uo_obs::prom`). Checks:
//!
//! - every line is a comment (`# HELP` / `# TYPE` with a known kind) or a
//!   sample of the shape `name{labels} value`, with valid metric/label
//!   names and a parseable finite value (`+Inf` allowed for `le`);
//! - each family has at most one `# TYPE`, appearing before its samples;
//! - histogram families expose `_bucket` (with `le`), `_sum`, and
//!   `_count` series whose buckets are **monotone cumulative** per label
//!   set, end in `le="+Inf"`, and agree with `_count`;
//! - exits 0 and prints a one-line summary on success, 1 with the
//!   offending line on the first violation.

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line: metric name, sorted labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

type Labels = Vec<(String, String)>;

/// Parses `{k="v",...}`, returning the labels and the rest of the line.
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = s.strip_prefix('{').ok_or("expected '{'")?;
    loop {
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !is_label_name(key) {
            return Err(format!("invalid label name '{key}'"));
        }
        rest = rest[eq + 1..].strip_prefix('"').ok_or("label value must be quoted")?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after = loop {
            let (i, ch) = chars.next().ok_or("unterminated label value")?;
            match ch {
                '"' => break i + 1,
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("invalid escape '\\{other}'")),
                    }
                }
                other => value.push(other),
            }
        };
        labels.push((key.to_string(), value));
        rest = &rest[after..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Err("NaN sample value".into()),
        _ => s.parse::<f64>().map_err(|_| format!("unparseable value '{s}'")),
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line.find(['{', ' ']).ok_or("sample without value")?;
    let name = &line[..name_end];
    if !is_metric_name(name) {
        return Err(format!("invalid metric name '{name}'"));
    }
    let (labels, rest) = if line[name_end..].starts_with('{') {
        parse_labels(&line[name_end..])?
    } else {
        (Vec::new(), &line[name_end..])
    };
    let mut parts = rest.split_whitespace();
    let value = parse_value(parts.next().ok_or("missing sample value")?)?;
    if let Some(ts) = parts.next() {
        // Optional trailing timestamp (milliseconds).
        ts.parse::<i64>().map_err(|_| format!("unparseable timestamp '{ts}'"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".into());
    }
    let mut labels = labels;
    labels.sort();
    Ok(Sample { name: name.to_string(), labels, value })
}

/// The base family a sample belongs to: histogram series fold their
/// `_bucket`/`_sum`/`_count` suffix back onto the family name.
fn family_of<'a>(name: &'a str, histograms: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains_key(base) {
                return base;
            }
        }
    }
    name
}

fn lint(doc: &str) -> Result<(usize, usize), String> {
    // family -> declared TYPE; histogram family -> () ; family -> samples.
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut families_seen: Vec<String> = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let fam = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("").trim();
                if !is_metric_name(fam) {
                    return Err(format!("line {n}: TYPE for invalid name '{fam}'"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {n}: unknown TYPE kind '{kind}'"));
                }
                if types.insert(fam.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for '{fam}'"));
                }
                families_seen.push(fam.to_string());
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let fam = rest.split(' ').next().unwrap_or("");
                if !is_metric_name(fam) {
                    return Err(format!("line {n}: HELP for invalid name '{fam}'"));
                }
            }
            // Other comments are ignored per the format.
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}: {line}"))?;
        samples.push(sample);
    }

    let histograms: HashMap<String, String> = types
        .iter()
        .filter(|(_, k)| k.as_str() == "histogram")
        .map(|(f, k)| (f.clone(), k.clone()))
        .collect();

    // Every sample must belong to a declared family (TYPE before use).
    for s in &samples {
        let fam = family_of(&s.name, &histograms);
        if !types.contains_key(fam) {
            return Err(format!("sample '{}' has no # TYPE", s.name));
        }
    }

    // Histogram invariants, per family and label set (excluding `le`).
    let mut checked = 0usize;
    for fam in histograms.keys() {
        // label-set-key -> (le, cumulative) in document order.
        let mut buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        let mut counts: HashMap<String, f64> = HashMap::new();
        let mut sums: HashMap<String, bool> = HashMap::new();
        for s in &samples {
            let key = |labels: &[(String, String)]| {
                labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            if s.name == format!("{fam}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("{fam}_bucket sample without le"))?;
                let bound = parse_value(&le.1)
                    .map_err(|e| format!("{fam}_bucket: bad le '{}': {e}", le.1))?;
                buckets.entry(key(&s.labels)).or_default().push((bound, s.value));
            } else if s.name == format!("{fam}_count") {
                counts.insert(key(&s.labels), s.value);
            } else if s.name == format!("{fam}_sum") {
                sums.insert(key(&s.labels), true);
            }
        }
        for (set, series) in &buckets {
            let mut prev_bound = f64::NEG_INFINITY;
            let mut prev_cum = -1.0;
            for (bound, cum) in series {
                if *bound <= prev_bound {
                    return Err(format!("{fam}{{{set}}}: le bounds not increasing"));
                }
                if *cum < prev_cum {
                    return Err(format!("{fam}{{{set}}}: bucket counts not cumulative"));
                }
                prev_bound = *bound;
                prev_cum = *cum;
            }
            let (last_bound, last_cum) = series.last().expect("bucket series cannot be empty here");
            if !last_bound.is_infinite() {
                return Err(format!("{fam}{{{set}}}: missing le=\"+Inf\" bucket"));
            }
            let count =
                counts.get(set).ok_or_else(|| format!("{fam}{{{set}}}: buckets without _count"))?;
            if (last_cum - count).abs() > 0.0 {
                return Err(format!("{fam}{{{set}}}: +Inf bucket {last_cum} != _count {count}"));
            }
            if !sums.contains_key(set) {
                return Err(format!("{fam}{{{set}}}: buckets without _sum"));
            }
            checked += 1;
        }
        if buckets.is_empty() {
            return Err(format!("histogram '{fam}' declared but has no _bucket samples"));
        }
    }

    Ok((samples.len(), checked))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let doc = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("prom_lint: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut doc = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut doc) {
                eprintln!("prom_lint: stdin: {e}");
                return ExitCode::FAILURE;
            }
            doc
        }
    };
    match lint(&doc) {
        Ok((samples, histograms)) => {
            eprintln!(
                "prom_lint: ok — {samples} sample(s), {histograms} histogram series validated"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("prom_lint: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_document() {
        let doc = "\
# HELP uo_triples Triples in the snapshot.
# TYPE uo_triples gauge
uo_triples 42
# HELP uo_queries_total Queries by outcome.
# TYPE uo_queries_total counter
uo_queries_total{outcome=\"ok\"} 3
uo_queries_total{outcome=\"err\"} 0
# HELP uo_lat_nanos Latency.
# TYPE uo_lat_nanos histogram
uo_lat_nanos_bucket{le=\"1\"} 1
uo_lat_nanos_bucket{le=\"3\"} 4
uo_lat_nanos_bucket{le=\"+Inf\"} 5
uo_lat_nanos_sum 905
uo_lat_nanos_count 5
";
        let (samples, hists) = lint(doc).unwrap();
        assert_eq!(samples, 8);
        assert_eq!(hists, 1);
    }

    #[test]
    fn rejects_violations() {
        // Sample without a TYPE.
        assert!(lint("uo_x 1\n").is_err());
        // Duplicate TYPE.
        assert!(lint("# TYPE uo_x gauge\n# TYPE uo_x gauge\nuo_x 1\n").is_err());
        // Non-cumulative buckets.
        assert!(lint(
            "# TYPE uo_h histogram\nuo_h_bucket{le=\"1\"} 5\nuo_h_bucket{le=\"2\"} 3\n\
             uo_h_bucket{le=\"+Inf\"} 5\nuo_h_sum 1\nuo_h_count 5\n"
        )
        .is_err());
        // Missing +Inf.
        assert!(lint("# TYPE uo_h histogram\nuo_h_bucket{le=\"1\"} 1\nuo_h_sum 1\nuo_h_count 1\n")
            .is_err());
        // +Inf disagrees with _count.
        assert!(lint(
            "# TYPE uo_h histogram\nuo_h_bucket{le=\"+Inf\"} 4\nuo_h_sum 1\nuo_h_count 5\n"
        )
        .is_err());
        // Unquoted label value.
        assert!(lint("# TYPE uo_x gauge\nuo_x{a=b} 1\n").is_err());
        // Bad value.
        assert!(lint("# TYPE uo_x gauge\nuo_x one\n").is_err());
    }

    #[test]
    fn histogram_label_sets_are_checked_independently() {
        let doc = "\
# TYPE uo_h histogram
uo_h_bucket{type=\"a\",le=\"1\"} 1
uo_h_bucket{type=\"a\",le=\"+Inf\"} 2
uo_h_sum{type=\"a\"} 3
uo_h_count{type=\"a\"} 2
uo_h_bucket{type=\"b\",le=\"+Inf\"} 0
uo_h_sum{type=\"b\"} 0
uo_h_count{type=\"b\"} 0
";
        let (_, hists) = lint(doc).unwrap();
        assert_eq!(hists, 2);
    }
}
