//! Regenerates Figure 13: total response time of `full` vs the LBR baseline
//! on the OPTIONAL-only queries q2.1–q2.6, on LUBM and DBpedia.

use std::time::Instant;
use uo_bench::{dbpedia_store, group2, header, lubm_group2, ms, row, run};
use uo_core::{prepare, Strategy};
use uo_datagen::Dataset;
use uo_engine::WcoEngine;
use uo_lbr::evaluate_lbr;

fn main() {
    let engine = WcoEngine::new();
    for (ds_name, dataset, store) in
        [("LUBM", Dataset::Lubm, lubm_group2()), ("DBpedia", Dataset::Dbpedia, dbpedia_store())]
    {
        println!("\n# Figure 13: {ds_name} ({} triples) — full vs LBR\n", store.len());
        header(&["Query", "LBR (ms)", "full (ms)", "speedup", "|results| (both)"]);
        for q in group2(dataset) {
            let prepared = prepare(&store, q.text).unwrap();
            let t = Instant::now();
            let (lbr_bag, _) = evaluate_lbr(&prepared.tree, &store, prepared.vars.len());
            let lbr_time = t.elapsed();
            let (report, full_time) = run(&store, &engine, &q, Strategy::Full);
            assert_eq!(
                lbr_bag.canonicalized(),
                report.bag.canonicalized(),
                "LBR and full disagree on {}",
                q.id
            );
            row(&[
                q.id.to_string(),
                ms(lbr_time),
                ms(full_time),
                format!("{:.1}x", lbr_time.as_secs_f64() / full_time.as_secs_f64().max(1e-9)),
                report.results.len().to_string(),
            ]);
        }
    }
}
