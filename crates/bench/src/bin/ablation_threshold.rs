//! Ablation (beyond the paper): candidate-pruning threshold sweep — off,
//! 0.1%, 1% (the paper's CP setting), 10% of the triple count, and the
//! adaptive per-BGP threshold (the paper's full setting).

use std::time::Instant;
use uo_bench::{dbpedia_store, group1, header, lubm_group1, ms, row};
use uo_core::{evaluate, prepare, Pruning};
use uo_datagen::Dataset;
use uo_engine::WcoEngine;

fn main() {
    let engine = WcoEngine::new();
    for (ds_name, dataset, store) in
        [("LUBM", Dataset::Lubm, lubm_group1()), ("DBpedia", Dataset::Dbpedia, dbpedia_store())]
    {
        println!("\n# Ablation: pruning threshold sweep on {ds_name}\n");
        header(&["Query", "off (ms)", "0.1% (ms)", "1% (ms)", "10% (ms)", "adaptive (ms)"]);
        let n = store.len();
        for q in group1(dataset) {
            let mut cells = vec![q.id.to_string()];
            for pruning in [
                Pruning::Off,
                Pruning::Fixed((n / 1000).max(1)),
                Pruning::Fixed((n / 100).max(1)),
                Pruning::Fixed((n / 10).max(1)),
                Pruning::adaptive_for(&store),
            ] {
                let prepared = prepare(&store, q.text).unwrap();
                let t = Instant::now();
                let _ = evaluate(&prepared.tree, &store, &engine, prepared.vars.len(), pruning);
                cells.push(ms(t.elapsed()));
            }
            row(&cells);
        }
    }
}
