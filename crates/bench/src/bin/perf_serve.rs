//! Closed-loop loopback throughput harness for the SPARQL HTTP endpoint.
//!
//! Starts `uo_server` in-process on an ephemeral port over a scaled LUBM
//! store, then drives it with N concurrent closed-loop clients (each sends
//! a request, waits for the response, repeats) cycling through the group-1
//! benchmark queries. Records QPS and latency percentiles into a
//! `uo-perf/1` artifact.
//!
//! The timings are **recorded, not gated** — the dev container is
//! single-core, so throughput numbers only mean something on real hosts.
//! What *is* enforced is determinism: every HTTP response body must be
//! byte-identical to the SPARQL-JSON serialization of a direct in-process
//! `run_query_with` of the same query, and the plan cache must report hits
//! (each query is requested many times).
//!
//! ```text
//! perf_serve [--threads N] [--clients C] [--requests R] [--out FILE.json]
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;
use uo_bench::{group1, lubm_group1, scale};
use uo_core::{run_query_with, Parallelism, Strategy};
use uo_datagen::Dataset;
use uo_engine::WcoEngine;
use uo_json as json;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// One blocking HTTP exchange: POST the query, return (status, body).
fn post_query(addr: std::net::SocketAddr, query: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream.set_nodelay(true).ok();
    let head = format!(
        "POST /sparql HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/sparql-query\r\n\
         Accept: application/sparql-results+json\r\nContent-Length: {}\r\n\r\n",
        query.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(query.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:.60}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = flag(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
    let clients: usize = flag(&args, "--clients").and_then(|v| v.parse().ok()).unwrap_or(8);
    let requests: usize = flag(&args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(40);
    let out = flag(&args, "--out").unwrap_or("BENCH_SERVE.json").to_string();

    eprintln!("perf_serve: building LUBM store (UO_SCALE={})...", scale());
    let store = Arc::new(lubm_group1());
    let queries = group1(Dataset::Lubm);

    // Reference bodies: the server must return exactly these bytes. The
    // server runs WCO/full with one engine worker, so mirror that here.
    let reference_engine = WcoEngine::with_threads(1);
    let expected: Vec<(String, String)> = queries
        .iter()
        .map(|q| {
            let report = run_query_with(
                &store,
                &reference_engine,
                q.text,
                Strategy::Full,
                Parallelism::sequential(),
            )
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
            let projection = uo_sparql::parse(q.text).unwrap().projection();
            (q.id.to_string(), uo_sparql::results_json(&projection, &report.results))
        })
        .collect();

    let cfg = uo_server::ServerConfig {
        threads,
        max_inflight: clients.max(4) * 2,
        ..uo_server::ServerConfig::default()
    };
    let handle = uo_server::start(store.snapshot(), cfg, 0).expect("start server");
    let addr = handle.addr();
    eprintln!(
        "perf_serve: {} clients x {} requests against http://{addr} ({threads} workers)",
        clients, requests
    );

    let t0 = Instant::now();
    let per_client: Vec<(Vec<(usize, f64)>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = &queries;
                let expected = &expected;
                s.spawn(move || {
                    let mut latencies: Vec<(usize, f64)> = Vec::with_capacity(requests);
                    let mut mismatches = 0usize;
                    for r in 0..requests {
                        let qi = (c + r) % queries.len();
                        let t = Instant::now();
                        let (status, body) = post_query(addr, queries[qi].text);
                        latencies.push((qi, t.elapsed().as_secs_f64() * 1e3));
                        if status != 200 || body != expected[qi].1 {
                            mismatches += 1;
                            eprintln!(
                                "MISMATCH {}: status {status}, {} vs {} expected bytes",
                                queries[qi].id,
                                body.len(),
                                expected[qi].1.len()
                            );
                        }
                    }
                    (latencies, mismatches)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Plan-cache stats from the live endpoint before shutting it down.
    let (_, metrics_body) = {
        let mut stream = TcpStream::connect(addr).expect("connect for /metrics");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .expect("send /metrics");
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (response, body)
    };
    let metrics = json::parse(&metrics_body).expect("parse /metrics JSON");
    let cache_hits = metrics
        .get("plan_cache")
        .and_then(|c| c.get("hits"))
        .and_then(json::Json::as_f64)
        .unwrap_or(0.0);
    let cache_misses = metrics
        .get("plan_cache")
        .and_then(|c| c.get("misses"))
        .and_then(json::Json::as_f64)
        .unwrap_or(0.0);
    handle.shutdown();

    let mismatches: usize = per_client.iter().map(|(_, m)| m).sum();
    let mut all_ms: Vec<f64> = Vec::new();
    let mut per_query_ms: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
    for (latencies, _) in &per_client {
        for &(qi, ms) in latencies {
            all_ms.push(ms);
            per_query_ms[qi].push(ms);
        }
    }
    all_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = all_ms.len();
    let qps = total as f64 / (wall_ms / 1e3).max(1e-9);

    let mut entries = String::new();
    for (qi, q) in queries.iter().enumerate() {
        let ms = &mut per_query_ms[qi];
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        entries.push_str(&format!(
            "    {{\"query\": \"{}\", \"requests\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \
             \"p99_ms\": {}}}{}\n",
            json::escape(q.id),
            ms.len(),
            json::num(uo_bench::percentile(ms, 50.0)),
            json::num(uo_bench::percentile(ms, 90.0)),
            json::num(uo_bench::percentile(ms, 99.0)),
            if qi + 1 < queries.len() { "," } else { "" }
        ));
    }
    let artifact = format!(
        "{{\n  \"schema\": \"uo-perf/1\",\n  \"bench\": \"perf_serve\",\n  \"pr\": 3,\n  \
         \"threads\": {threads},\n  \"clients\": {clients},\n  \
         \"requests_per_client\": {requests},\n  \"host_threads\": {},\n  \
         \"uo_scale\": {},\n  \"wall_ms\": {},\n  \"qps\": {},\n  \
         \"latency_ms\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n  \
         \"plan_cache\": {{\"hits\": {}, \"misses\": {}}},\n  \
         \"mismatches\": {mismatches},\n  \"entries\": [\n{entries}  ]\n}}\n",
        uo_par::default_threads(),
        json::num(scale()),
        json::num(wall_ms),
        json::num(qps),
        json::num(uo_bench::percentile(&all_ms, 50.0)),
        json::num(uo_bench::percentile(&all_ms, 90.0)),
        json::num(uo_bench::percentile(&all_ms, 99.0)),
        json::num(all_ms.last().copied().unwrap_or(0.0)),
        json::num(cache_hits),
        json::num(cache_misses),
    );
    if let Err(e) = std::fs::write(&out, &artifact) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "perf_serve: {total} requests in {:.0} ms -> {:.1} QPS (p50 {:.2} ms, p99 {:.2} ms), \
         cache {cache_hits}/{} hits; artifact: {out}",
        wall_ms,
        qps,
        uo_bench::percentile(&all_ms, 50.0),
        uo_bench::percentile(&all_ms, 99.0),
        cache_hits + cache_misses,
    );

    // The determinism contract is the gate; timings are informational.
    if mismatches > 0 {
        eprintln!("perf_serve: FAILED — {mismatches} responses diverged from direct execution");
        std::process::exit(1);
    }
    if cache_hits <= 0.0 {
        eprintln!("perf_serve: FAILED — plan cache reported no hits over a repeating workload");
        std::process::exit(1);
    }
}
