//! CI regression gate: compares a `perf_suite` artifact against the
//! checked-in baseline.
//!
//! ```text
//! perf_gate <current.json> <baseline.json>
//!           [--tolerance 0.25] [--min-ms 1.0] [--slack-ms 5.0]
//! ```
//!
//! Exits non-zero if any suite query regressed more than the tolerance
//! beyond the suite-wide median current/baseline ratio (which calibrates
//! away machine-speed differences), or if any deterministic metric
//! (result count, BGP evaluations, join space) changed at all. See
//! `uo_bench::perf::check_regressions`.

use std::process::ExitCode;
use uo_bench::json;
use uo_bench::perf::{check_regressions, GateConfig};

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn load(path: &str) -> Result<json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let [current_path, baseline_path] = positional[..] else {
        eprintln!(
            "usage: perf_gate <current.json> <baseline.json> \
             [--tolerance F] [--min-ms F] [--slack-ms F]"
        );
        return ExitCode::FAILURE;
    };
    let mut cfg = GateConfig::default();
    if let Some(t) = flag(&args, "--tolerance").and_then(|v| v.parse().ok()) {
        cfg.tolerance = t;
    }
    if let Some(m) = flag(&args, "--min-ms").and_then(|v| v.parse().ok()) {
        cfg.min_ms = m;
    }
    if let Some(s) = flag(&args, "--slack-ms").and_then(|v| v.parse().ok()) {
        cfg.abs_slack_ms = s;
    }

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_regressions(&current, &baseline, cfg) {
        Err(e) => {
            eprintln!("error: artifacts not comparable: {e}");
            ExitCode::FAILURE
        }
        Ok(failures) if failures.is_empty() => {
            eprintln!(
                "perf gate passed: no query regressed more than {:.0}% vs {baseline_path}",
                cfg.tolerance * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("perf gate FAILED ({} problem(s)):", failures.len());
            for f in &failures {
                eprintln!("  - {f}");
            }
            ExitCode::FAILURE
        }
    }
}
