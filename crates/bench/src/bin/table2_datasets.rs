//! Regenerates Table 2: dataset statistics (triples, entities, predicates,
//! literals) for the LUBM and DBpedia-style datasets.

use uo_bench::{dbpedia_store, header, lubm_group1, lubm_group2, row};

fn main() {
    println!("# Table 2: Datasets Statistics\n");
    header(&["Dataset", "triples", "entities", "predicates", "literals"]);
    for (name, store) in [
        ("LUBM (group 1 scale)", lubm_group1()),
        ("LUBM (group 2 scale)", lubm_group2()),
        ("DBpedia", dbpedia_store()),
    ] {
        let s = store.stats();
        row(&[
            name.to_string(),
            s.triples.to_string(),
            s.entities.to_string(),
            s.predicates.to_string(),
            s.literals.to_string(),
        ]);
    }
    println!("\n(Paper: LUBM 534,355,247 triples / DBpedia 830,030,460 — scaled down ~3 orders of magnitude.)");
}
