//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one experiment:
//!
//! | binary | experiment |
//! |---|---|
//! | `table2_datasets`   | Table 2 — dataset statistics |
//! | `table34_queries`   | Tables 3 & 4 — query statistics and result sizes |
//! | `fig10_verification`| Figure 10 — base/TT/CP/full on q1.1–q1.6, both engines, both datasets |
//! | `fig11_joinspace`   | Figure 11 — execution time and join space |
//! | `fig12_scalability` | Figure 12 — `full` on LUBM at four scales |
//! | `fig13_lbr`         | Figure 13 — `full` vs LBR on q2.1–q2.6 |
//! | `ablation_transforms` | merge-only vs inject-only vs both (beyond the paper) |
//! | `ablation_threshold`  | candidate-pruning threshold sweep (beyond the paper) |
//!
//! Scales are reduced from the paper's 0.5–2 B triples to laptop scale; set
//! `UO_SCALE` (a small positive float, default 1.0) to grow or shrink every
//! dataset proportionally.

pub use uo_json as json;

pub mod perf;

use std::time::{Duration, Instant};
use uo_core::{run_query, RunReport, Strategy};
use uo_datagen::{
    generate_dbpedia, generate_lubm, queries::queries_for, BenchQuery, Dataset, DbpediaConfig,
    LubmConfig,
};
use uo_engine::{BgpEngine, BinaryJoinEngine, WcoEngine};
use uo_store::TripleStore;

/// The global scale multiplier from `UO_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("UO_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn scaled(base: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(1)
}

/// The LUBM store used by the group-1 experiments (Figures 10–11): two
/// universities (~70k triples at scale 1).
pub fn lubm_group1() -> TripleStore {
    generate_lubm(&LubmConfig { universities: scaled(2), ..LubmConfig::default() })
}

/// The LUBM store used by the LBR comparison: thirteen universities so the
/// `University12` constants of q2.5/q2.6 resolve.
pub fn lubm_group2() -> TripleStore {
    generate_lubm(&LubmConfig { universities: scaled(13), ..LubmConfig::default() })
}

/// A LUBM store at an explicit university count (Figure 12's sweep).
pub fn lubm_at(universities: usize) -> TripleStore {
    generate_lubm(&LubmConfig { universities, ..LubmConfig::default() })
}

/// The DBpedia-style store (~250k triples at scale 1).
pub fn dbpedia_store() -> TripleStore {
    generate_dbpedia(&DbpediaConfig { articles: scaled(15_000), ..DbpediaConfig::default() })
}

/// Both engines, with the labels the paper uses for them.
pub fn engines() -> Vec<(&'static str, Box<dyn BgpEngine>)> {
    vec![
        ("gStore(wco)", Box::new(WcoEngine::new())),
        ("Jena(binary)", Box::new(BinaryJoinEngine::new())),
    ]
}

/// Runs one query under one strategy and returns the report with wall time.
pub fn run(
    store: &TripleStore,
    engine: &dyn BgpEngine,
    q: &BenchQuery,
    strategy: Strategy,
) -> (RunReport, Duration) {
    let t = Instant::now();
    let report = run_query(store, engine, q.text, strategy)
        .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
    (report, t.elapsed())
}

/// The group-1 queries of a dataset (q1.1–q1.6).
pub fn group1(dataset: Dataset) -> Vec<BenchQuery> {
    queries_for(dataset).into_iter().filter(|q| q.group == 1).collect()
}

/// The group-2 queries of a dataset (q2.1–q2.6).
pub fn group2(dataset: Dataset) -> Vec<BenchQuery> {
    queries_for(dataset).into_iter().filter(|q| q.group == 2).collect()
}

/// Formats a duration in ms with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The `p`-th percentile (0..=100) of an ascending-sorted slice
/// (nearest-rank; 0.0 when empty). Shared by the latency harnesses.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown table header and separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_one_query() {
        let st = generate_lubm(&LubmConfig::tiny());
        let qs = group1(Dataset::Lubm);
        let engine = WcoEngine::new();
        let (report, _) = run(&st, &engine, &qs[1], Strategy::Full);
        // q1.2 on the tiny store still finds the email-anchored student.
        assert!(!report.results.is_empty());
    }

    #[test]
    fn group_partition() {
        assert_eq!(group1(Dataset::Lubm).len(), 6);
        assert_eq!(group2(Dataset::Dbpedia).len(), 6);
    }
}
