//! Sampling-based cardinality estimation (Section 5.1.2).
//!
//! Estimation starts from the exact match count of a single triple pattern
//! (a binary-searched index range) and, for every further pattern added to
//! the join prefix, extends a bounded *sample* of partial results and scales
//! the running estimate by the observed extension ratio:
//!
//! ```text
//! card(V_k) = max(#extend / #sample × card(V_{k-1}), 1)
//! ```
//!
//! The estimator also records, per join step, the quantities the two engine
//! cost formulas need (prefix cardinality, pattern scan count, and the
//! minimum `average_size(v, p)` over bound endpoints), so both
//! [`crate::WcoEngine`] and [`crate::BinaryJoinEngine`] derive their costs
//! from one shared plan sketch.

use crate::pattern::{EncodedBgp, EncodedTriplePattern, Slot};
use uo_rdf::{Id, NO_ID};
use uo_sparql::algebra::VarMask;
use uo_store::Snapshot;

/// Number of partial results sampled per join step.
const SAMPLE_SIZE: usize = 64;

/// One join step in the estimated plan sketch.
#[derive(Debug, Clone)]
pub struct Step {
    /// Index into the BGP's pattern list.
    pub pattern: usize,
    /// Exact scan count of the pattern in isolation.
    pub scan_count: usize,
    /// Estimated cardinality of the join prefix *before* this step.
    pub card_before: f64,
    /// Estimated cardinality *after* this step.
    pub card_after: f64,
    /// `min average_size(v_i, p)` over the pattern's endpoints already bound
    /// before this step (the WCO per-tuple extension cost). `1.0` for seeds.
    pub min_avg_size: f64,
    /// True if this step started a new connected component (cartesian seed).
    pub is_seed: bool,
}

/// A cardinality/cost sketch of one BGP under a greedy join order.
#[derive(Debug, Clone)]
pub struct Estimator {
    /// The join steps, in execution order.
    pub steps: Vec<Step>,
    /// Final estimated result cardinality.
    pub cardinality: f64,
}

impl Estimator {
    /// Builds the sketch for `bgp` on `store`.
    ///
    /// The greedy order mirrors both engines' execution heuristic: start from
    /// the pattern with the smallest exact scan count, then repeatedly take
    /// the *connected* pattern (sharing a variable with the bound prefix)
    /// with the smallest scan count; re-seed on disconnection.
    pub fn sketch(store: &Snapshot, bgp: &EncodedBgp) -> Estimator {
        let n = bgp.patterns.len();
        if n == 0 {
            return Estimator { steps: Vec::new(), cardinality: 1.0 };
        }
        let counts: Vec<usize> = bgp.patterns.iter().map(|p| p.scan_count(store)).collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut bound: VarMask = 0;
        let mut steps: Vec<Step> = Vec::with_capacity(n);
        let mut card = 1.0f64;
        // The evolving sample of partial rows (over the BGP's own vars; the
        // row width only needs to cover the largest VarId present).
        let width = bgp
            .patterns
            .iter()
            .flat_map(|p| p.slots())
            .filter_map(|s| s.as_var())
            .map(|v| v as usize + 1)
            .max()
            .unwrap_or(0);
        let mut sample: Vec<Box<[Id]>> = vec![vec![NO_ID; width].into_boxed_slice()];

        while !remaining.is_empty() {
            // Prefer connected patterns; among them the smallest scan count.
            let pick = remaining
                .iter()
                .copied()
                .filter(|&i| bound == 0 || bgp.patterns[i].var_mask() & bound != 0)
                .min_by_key(|&i| counts[i])
                .unwrap_or_else(|| {
                    // Disconnected: seed a new component with the smallest
                    // remaining pattern.
                    remaining.iter().copied().min_by_key(|&i| counts[i]).unwrap()
                });
            remaining.retain(|&i| i != pick);
            let pat = &bgp.patterns[pick];
            let is_seed = bound == 0 || pat.var_mask() & bound == 0;

            let min_avg_size = min_avg_size(store, pat, bound);
            let card_before = card;

            // Extend the sample through this pattern and measure the ratio.
            let mut extended: Vec<Box<[Id]>> = Vec::new();
            let mut total_ext = 0usize;
            for row in &sample {
                let s = pat.s.resolve(row);
                let p = pat.p.resolve(row);
                let o = pat.o.resolve(row);
                for spo in store.match_pattern(s, p, o).iter_spo() {
                    if let Some(next) = pat.bind(spo, row) {
                        total_ext += 1;
                        if extended.len() < SAMPLE_SIZE {
                            extended.push(next);
                        }
                    }
                }
            }
            let ratio =
                if sample.is_empty() { 0.0 } else { total_ext as f64 / sample.len() as f64 };
            card = if is_seed {
                // A seed multiplies the prefix by the component's own size
                // (cartesian product between components).
                (card_before * counts[pick] as f64).max(if counts[pick] == 0 { 0.0 } else { 1.0 })
            } else if total_ext == 0 {
                // The paper clamps to 1; an exact zero sample over the whole
                // prefix is possible only when the prefix sample was complete.
                if sample.len() < SAMPLE_SIZE {
                    0.0
                } else {
                    1.0
                }
            } else {
                (ratio * card_before).max(1.0)
            };
            // Sub-sample evenly if the extension overshot the cap (the cap
            // was applied during collection; nothing further needed).
            if !extended.is_empty() || is_seed {
                if is_seed {
                    // Seed sample: scan the pattern directly, joined with one
                    // representative of the previous sample (cartesian).
                    let base = sample.first().cloned();
                    extended.clear();
                    if let Some(base) = base {
                        for spo in store
                            .match_pattern(pat.s.as_const(), pat.p.as_const(), pat.o.as_const())
                            .iter_spo()
                            .take(SAMPLE_SIZE)
                        {
                            if let Some(next) = pat.bind(spo, &base) {
                                extended.push(next);
                            }
                        }
                    }
                }
                sample = extended;
            } else {
                sample.clear();
            }

            bound |= pat.var_mask();
            steps.push(Step {
                pattern: pick,
                scan_count: counts[pick],
                card_before,
                card_after: card,
                min_avg_size,
                is_seed,
            });
            if card == 0.0 {
                // Dead prefix: remaining steps cannot resurrect it.
                for &i in &remaining {
                    steps.push(Step {
                        pattern: i,
                        scan_count: counts[i],
                        card_before: 0.0,
                        card_after: 0.0,
                        min_avg_size: 1.0,
                        is_seed: false,
                    });
                }
                remaining.clear();
            }
        }
        Estimator { steps, cardinality: card }
    }

    /// The execution order of pattern indexes this sketch assumed.
    pub fn order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.pattern).collect()
    }
}

/// `min_i average_size(v_i, p)` over the pattern's endpoints bound before
/// this step — the per-tuple cost of a WCO extension (Section 5.1.2).
fn min_avg_size(store: &Snapshot, pat: &EncodedTriplePattern, bound: VarMask) -> f64 {
    let p_const = pat.p.as_const();
    let s_bound = match pat.s {
        Slot::Const(_) => true,
        Slot::Var(v) => bound & (1 << v) != 0,
    };
    let o_bound = match pat.o {
        Slot::Const(_) => true,
        Slot::Var(v) => bound & (1 << v) != 0,
    };
    let stats = store.stats();
    let mut best = f64::INFINITY;
    if s_bound {
        best = best.min(stats.average_size(p_const, true));
    }
    if o_bound {
        best = best.min(stats.average_size(p_const, false));
    }
    if best.is_finite() {
        best
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::encode_bgp;
    use uo_rdf::Term;
    use uo_sparql::algebra::VarTable;
    use uo_sparql::ast::{PatternTerm, TriplePattern};
    use uo_store::TripleStore;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let conv = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                PatternTerm::Var(v.to_string())
            } else {
                PatternTerm::Const(Term::iri(x))
            }
        };
        TriplePattern::new(conv(s), conv(p), conv(o))
    }

    /// A chain graph: x0 -p-> x1 -p-> ... with 100 nodes, plus one hub with
    /// 50 q-edges.
    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        for i in 0..100 {
            st.insert_terms(
                &Term::iri(format!("http://n{i}")),
                &Term::iri("http://p"),
                &Term::iri(format!("http://n{}", i + 1)),
            );
        }
        for i in 0..50 {
            st.insert_terms(
                &Term::iri("http://hub"),
                &Term::iri("http://q"),
                &Term::iri(format!("http://m{i}")),
            );
        }
        st.build();
        st
    }

    #[test]
    fn single_pattern_exact() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?x", "http://p", "?y")], &mut vt, st.dictionary());
        let e = Estimator::sketch(&st, &bgp);
        assert_eq!(e.cardinality, 100.0);
        assert_eq!(e.steps.len(), 1);
        assert!(e.steps[0].is_seed);
    }

    #[test]
    fn chain_estimate_close_to_exact() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(
            &[tp("?x", "http://p", "?y"), tp("?y", "http://p", "?z")],
            &mut vt,
            st.dictionary(),
        );
        let e = Estimator::sketch(&st, &bgp);
        // Exact: 99 two-hop paths. The sampled estimate should be within 2x.
        assert!(e.cardinality > 45.0 && e.cardinality < 200.0, "{}", e.cardinality);
    }

    #[test]
    fn selective_constant_first() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(
            &[tp("?x", "http://p", "?y"), tp("http://hub", "http://q", "?z")],
            &mut vt,
            st.dictionary(),
        );
        let e = Estimator::sketch(&st, &bgp);
        // The hub pattern (50 matches) is chosen as seed over the p-chain
        // (100 matches); the other pattern is disconnected → cartesian.
        assert_eq!(e.steps[0].pattern, 1);
        assert!(e.steps[1].is_seed, "disconnected component re-seeds");
        assert!((e.cardinality - 5000.0).abs() < 2500.0, "{}", e.cardinality);
    }

    #[test]
    fn dead_constant_estimates_zero() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?x", "http://nope", "?y")], &mut vt, st.dictionary());
        let e = Estimator::sketch(&st, &bgp);
        assert_eq!(e.cardinality, 0.0);
    }

    #[test]
    fn empty_bgp_is_unit() {
        let st = store();
        let bgp = EncodedBgp::default();
        let e = Estimator::sketch(&st, &bgp);
        assert_eq!(e.cardinality, 1.0);
        assert!(e.steps.is_empty());
    }

    #[test]
    fn connected_pattern_preferred_over_smaller_disconnected() {
        let st = store();
        let mut vt = VarTable::new();
        // Seed will be the hub (50); then ?z chain patterns are disconnected
        // from hub's ?z... construct: hub pattern binds ?z; p-pattern over
        // (?z, ?w) is connected; (?a, ?b) is not.
        let bgp = encode_bgp(
            &[
                tp("http://hub", "http://q", "?z"),
                tp("?z", "http://p", "?w"),
                tp("?a", "http://p", "?b"),
            ],
            &mut vt,
            st.dictionary(),
        );
        let e = Estimator::sketch(&st, &bgp);
        assert_eq!(e.order()[0], 0);
        assert_eq!(e.order()[1], 1, "connected pattern must come before disconnected");
    }
}
