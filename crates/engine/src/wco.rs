//! gStore-style BGP evaluation: worst-case-optimal vertex-at-a-time
//! extension joins.
//!
//! Partial matches are extended one triple pattern at a time in the greedy
//! order of [`Estimator::sketch`]. Because every pattern after the seed has
//! at least one endpoint already bound, each extension is an index range
//! scan keyed by the bound endpoint — the "scan all edges labelled `p`
//! incident to the existing vertices" step of the paper's WCO description —
//! and patterns whose variables are all bound by earlier steps degenerate to
//! existence filters (intersection). The cost of extending prefix
//! `{v1..vk-1}` by `vk` is `card({v1..vk-1}) × min_i average_size(v_i, p)`
//! (Section 5.1.2).

use crate::estimate::Estimator;
use crate::pattern::{CandidateSet, EncodedBgp};
use crate::BgpEngine;
use uo_par::Parallelism;
use uo_rdf::Id;
use uo_sparql::algebra::Bag;
use uo_store::Snapshot;

/// Minimum partial matches at an extension level before the WCO engine fans
/// out to workers; below this, thread spawns outweigh the per-row scans.
const WCO_PAR_THRESHOLD: usize = 64;

/// The worst-case-optimal join engine (the paper's gStore stand-in).
///
/// With more than one worker, each extension level partitions the current
/// partial matches into contiguous chunks evaluated concurrently; per-chunk
/// results are concatenated in chunk order, so parallel evaluation is
/// bit-identical to sequential.
#[derive(Debug, Clone, Copy)]
pub struct WcoEngine {
    threads: usize,
}

impl WcoEngine {
    /// Creates the engine with the worker count of the `UO_THREADS`
    /// environment knob (falling back to the host's parallelism; `1` =
    /// sequential).
    pub fn new() -> Self {
        Self::with_threads(Parallelism::from_env().threads())
    }

    /// Creates the engine with an explicit worker count (`1` = sequential).
    pub fn with_threads(threads: usize) -> Self {
        WcoEngine { threads: threads.max(1) }
    }

    /// A strictly sequential engine.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }
}

impl Default for WcoEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl BgpEngine for WcoEngine {
    fn name(&self) -> &'static str {
        "wco"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn evaluate(
        &self,
        store: &Snapshot,
        bgp: &EncodedBgp,
        width: usize,
        candidates: &CandidateSet,
    ) -> Bag {
        self.evaluate_limited(store, bgp, width, candidates, usize::MAX)
    }

    /// Early-terminating evaluation: the budget caps only the *last*
    /// extension level (or the seed scan of a single-pattern BGP); earlier
    /// levels enumerate in full so the extension order is unchanged and the
    /// result is the uncapped bag's first `limit` rows — bit-identical at
    /// any worker count (per-chunk caps + in-order truncating concat).
    fn evaluate_limited(
        &self,
        store: &Snapshot,
        bgp: &EncodedBgp,
        width: usize,
        candidates: &CandidateSet,
        limit: usize,
    ) -> Bag {
        if bgp.patterns.is_empty() {
            let mut unit = Bag::unit(width);
            unit.truncate(limit);
            return unit;
        }
        let mask = bgp.var_mask();
        if limit == 0 {
            return Bag { width, maybe: mask, certain: 0, rows: Vec::new() };
        }
        let par = Parallelism::new(self.threads);
        let order = Estimator::sketch(store, bgp).order();
        let last = order.len() - 1;
        // Seed: partition the first pattern's candidate range across workers
        // (the shared scan primitive; later levels partition the
        // partial-match vector instead).
        let seed = &bgp.patterns[order[0]];
        let seed_cap = if last == 0 { limit } else { usize::MAX };
        let mut rows: Vec<Box<[Id]>> =
            crate::binary::scan_pattern_limited(store, seed, width, candidates, par, seed_cap).rows;
        for (level, idx) in order.into_iter().enumerate().skip(1) {
            if rows.is_empty() {
                break;
            }
            let cap = if level == last { limit } else { usize::MAX };
            // Each extension does a full index scan per row, so fan out even
            // for modest row counts — but not for trivial ones, where thread
            // spawns cost more than the scans.
            let level_par =
                if rows.len() < WCO_PAR_THRESHOLD { Parallelism::sequential() } else { par };
            let pat = &bgp.patterns[idx];
            let pieces = uo_par::map_chunks(level_par, &rows, |chunk| {
                let mut next: Vec<Box<[Id]>> = Vec::new();
                'rows: for row in chunk {
                    let s = pat.s.resolve(row);
                    let p = pat.p.resolve(row);
                    let o = pat.o.resolve(row);
                    for spo in store.match_pattern(s, p, o).iter_spo() {
                        if let Some(ext) = pat.bind(spo, row) {
                            if candidates.admits_row(&ext) {
                                next.push(ext);
                                if next.len() >= cap {
                                    break 'rows;
                                }
                            }
                        }
                    }
                }
                next
            });
            rows = uo_par::concat_capped(pieces, cap);
        }
        Bag { width, maybe: mask, certain: if rows.is_empty() { 0 } else { mask }, rows }
    }

    fn estimate_cardinality(&self, store: &Snapshot, bgp: &EncodedBgp) -> f64 {
        Estimator::sketch(store, bgp).cardinality
    }

    fn estimate_cost(&self, store: &Snapshot, bgp: &EncodedBgp) -> f64 {
        let sketch = Estimator::sketch(store, bgp);
        let mut cost = 0.0;
        for step in &sketch.steps {
            if step.is_seed {
                cost += step.scan_count as f64; // seeding scans the range
            } else {
                cost += step.card_before * step.min_avg_size; // WCO extension
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::encode_bgp;
    use crate::BinaryJoinEngine;
    use uo_rdf::Term;
    use uo_sparql::algebra::VarTable;
    use uo_sparql::ast::{PatternTerm, TriplePattern};
    use uo_store::TripleStore;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let conv = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                PatternTerm::Var(v.to_string())
            } else {
                PatternTerm::Const(Term::iri(x))
            }
        };
        TriplePattern::new(conv(s), conv(p), conv(o))
    }

    /// A two-level tree: root -> 10 children -> 10 grandchildren each, plus
    /// labels on leaves.
    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        let child = Term::iri("http://child");
        let label = Term::iri("http://label");
        for i in 0..10 {
            st.insert_terms(&Term::iri("http://root"), &child, &Term::iri(format!("http://c{i}")));
            for j in 0..10 {
                st.insert_terms(
                    &Term::iri(format!("http://c{i}")),
                    &child,
                    &Term::iri(format!("http://g{i}_{j}")),
                );
                st.insert_terms(
                    &Term::iri(format!("http://g{i}_{j}")),
                    &label,
                    &Term::literal(format!("leaf {i} {j}")),
                );
            }
        }
        st.build();
        st
    }

    #[test]
    fn two_hop_traversal() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(
            &[
                tp("http://root", "http://child", "?c"),
                tp("?c", "http://child", "?g"),
                tp("?g", "http://label", "?l"),
            ],
            &mut vt,
            st.dictionary(),
        );
        let bag = WcoEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(bag.len(), 100);
    }

    #[test]
    fn agrees_with_binary_join_engine() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(
            &[tp("?a", "http://child", "?b"), tp("?b", "http://child", "?c")],
            &mut vt,
            st.dictionary(),
        );
        let w = WcoEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        let b = BinaryJoinEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(w.canonicalized(), b.canonicalized());
    }

    #[test]
    fn candidate_pruning_restricts_results() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?c", "http://child", "?g")], &mut vt, st.dictionary());
        let c3 = st.dictionary().lookup(&Term::iri("http://c3")).unwrap();
        let mut cs = CandidateSet::none();
        cs.restrict(vt.get("c").unwrap(), vec![c3]);
        let bag = WcoEngine::new().evaluate(&st, &bgp, vt.len(), &cs);
        assert_eq!(bag.len(), 10);
    }

    #[test]
    fn cartesian_components() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(
            &[tp("http://root", "http://child", "?a"), tp("http://c0", "http://child", "?b")],
            &mut vt,
            st.dictionary(),
        );
        let bag = WcoEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(bag.len(), 100, "10 × 10 cartesian");
    }

    #[test]
    fn fully_bound_pattern_is_filter() {
        let st = store();
        let mut vt = VarTable::new();
        // ?c must be a child of root AND have c3 as itself (via existence of
        // the root->c3 edge expressed with consts).
        let bgp = encode_bgp(
            &[tp("http://root", "http://child", "?c"), tp("?c", "http://child", "http://g3_7")],
            &mut vt,
            st.dictionary(),
        );
        let bag = WcoEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn evaluate_limited_is_exact_prefix_both_engines() {
        let st = store();
        let mut vt = VarTable::new();
        // Multi-pattern (final level capped) and single-pattern (seed scan
        // capped) shapes.
        let multi = encode_bgp(
            &[tp("?a", "http://child", "?b"), tp("?b", "http://child", "?c")],
            &mut vt,
            st.dictionary(),
        );
        let single = encode_bgp(&[tp("?c", "http://child", "?g")], &mut vt, st.dictionary());
        for threads in [1usize, 2, 4] {
            let engines: [Box<dyn BgpEngine>; 2] = [
                Box::new(WcoEngine::with_threads(threads)),
                Box::new(BinaryJoinEngine::with_threads(threads)),
            ];
            for engine in &engines {
                for bgp in [&multi, &single] {
                    let full = engine.evaluate(&st, bgp, vt.len(), &CandidateSet::none());
                    assert!(full.len() > 10);
                    for limit in [0usize, 1, 7, full.len(), full.len() + 5] {
                        let capped = engine.evaluate_limited(
                            &st,
                            bgp,
                            vt.len(),
                            &CandidateSet::none(),
                            limit,
                        );
                        assert_eq!(
                            capped.rows.as_slice(),
                            &full.rows[..limit.min(full.len())],
                            "{} threads={threads} limit={limit}",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wco_cost_grows_with_fanout() {
        let st = store();
        let mut vt = VarTable::new();
        let narrow =
            encode_bgp(&[tp("http://root", "http://child", "?c")], &mut vt, st.dictionary());
        let wide = encode_bgp(
            &[tp("?a", "http://child", "?b"), tp("?b", "http://child", "?c")],
            &mut vt,
            st.dictionary(),
        );
        let e = WcoEngine::new();
        assert!(e.estimate_cost(&st, &narrow) < e.estimate_cost(&st, &wide));
    }
}
