//! BGP evaluation engines.
//!
//! The paper deliberately builds SPARQL-UO optimization *on top of* existing
//! BGP engines (Section 4): its experiments implement the approach over both
//! gStore (worst-case-optimal joins) and Apache Jena (binary hash joins).
//! This crate provides faithful stand-ins for both:
//!
//! - [`WcoEngine`]: gStore-style *vertex-at-a-time* evaluation — each step
//!   extends every partial match by one query vertex, intersecting the
//!   adjacency lists of all incident edges, with the WCO cost formula of
//!   Section 5.1.2;
//! - [`BinaryJoinEngine`]: Jena-style evaluation — each triple pattern is
//!   scanned into a relation and relations are combined by cost-ordered hash
//!   joins, with cost `2·min + max` (Equation 9).
//!
//! Both implement the [`BgpEngine`] trait, which also exposes the
//! cardinality/cost estimation the paper's SPARQL-UO cost model consumes
//! (Equations 2 and 6), and both accept [`CandidateSet`]s — the hook that
//! the paper's query-time *candidate pruning* (Section 6) uses to restrict
//! the search space of BGP evaluation on the fly.
//!
//! Both engines carry a worker count (the `UO_THREADS` knob, or
//! `with_threads`): above one worker, scans and extension levels partition
//! their input across scoped threads (`uo_par`) and merge per-worker
//! results in input order, so parallel evaluation returns bags
//! **bit-identical** to sequential evaluation.

pub mod binary;
pub mod estimate;
pub mod pattern;
pub mod wco;

pub use binary::{scan_pattern, scan_pattern_limited, scan_pattern_par, BinaryJoinEngine};
pub use estimate::Estimator;
pub use pattern::{encode_bgp, CandidateSet, EncodedBgp, EncodedTriplePattern, Slot};
pub use wco::WcoEngine;

use uo_sparql::algebra::Bag;
use uo_store::Snapshot;

/// A BGP evaluation engine: the pluggable building block of Algorithm 1.
pub trait BgpEngine: Send + Sync {
    /// A short name for reports ("wco" / "binary").
    fn name(&self) -> &'static str;

    /// The engine's configured worker count (`1` = sequential). Purely
    /// informational — results never depend on it.
    fn threads(&self) -> usize {
        1
    }

    /// Evaluates a BGP, returning all matches as a [`Bag`] over a row frame
    /// of `width` variables. `candidates` restricts the admissible values of
    /// specific variables (empty set = unrestricted).
    fn evaluate(
        &self,
        store: &Snapshot,
        bgp: &EncodedBgp,
        width: usize,
        candidates: &CandidateSet,
    ) -> Bag;

    /// [`evaluate`](Self::evaluate) under a row budget: returns exactly the
    /// first `limit` rows (in enumeration order) of the bag `evaluate` would
    /// produce. Engines override this to stop enumerating once the budget is
    /// met; the default materializes everything and truncates.
    fn evaluate_limited(
        &self,
        store: &Snapshot,
        bgp: &EncodedBgp,
        width: usize,
        candidates: &CandidateSet,
        limit: usize,
    ) -> Bag {
        let mut bag = self.evaluate(store, bgp, width, candidates);
        bag.truncate(limit);
        bag
    }

    /// Estimated number of results of the BGP (Section 5.1.2's sampling
    /// scheme). Used both by the SPARQL-UO cost model and as the adaptive
    /// candidate-pruning threshold.
    fn estimate_cardinality(&self, store: &Snapshot, bgp: &EncodedBgp) -> f64;

    /// Estimated evaluation cost of the BGP under this engine's join
    /// paradigm (`cost(P)` in Equations 2 and 6).
    fn estimate_cost(&self, store: &Snapshot, bgp: &EncodedBgp) -> f64;
}
