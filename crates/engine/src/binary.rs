//! Jena-style BGP evaluation: scan each triple pattern into a relation and
//! combine relations with cost-ordered hash joins.

use crate::estimate::Estimator;
use crate::pattern::{CandidateSet, EncodedBgp, EncodedTriplePattern};
use crate::BgpEngine;
use uo_par::Parallelism;
use uo_rdf::{Id, NO_ID};
use uo_sparql::algebra::Bag;
use uo_store::Snapshot;

/// The binary hash-join engine (the paper's Jena stand-in).
///
/// Each triple pattern is materialized by an index scan; relations are then
/// combined left-deep in the greedy order of [`Estimator::sketch`] using the
/// bag-semantics hash join of `uo_sparql::algebra`. Its cost model is
/// Equation 9: `2·min(card(V1), card(V2)) + max(card(V1), card(V2))`
/// (hash-build twice-weighted plus probe).
///
/// With more than one worker, pattern scans partition their index range and
/// joins partition their probe side ([`Bag::join_par`]); both merge
/// per-worker results in chunk order, so parallel evaluation is
/// bit-identical to sequential.
#[derive(Debug, Clone, Copy)]
pub struct BinaryJoinEngine {
    threads: usize,
}

impl BinaryJoinEngine {
    /// Creates the engine with the worker count of the `UO_THREADS`
    /// environment knob (falling back to the host's parallelism; `1` =
    /// sequential).
    pub fn new() -> Self {
        Self::with_threads(Parallelism::from_env().threads())
    }

    /// Creates the engine with an explicit worker count (`1` = sequential).
    pub fn with_threads(threads: usize) -> Self {
        BinaryJoinEngine { threads: threads.max(1) }
    }

    /// A strictly sequential engine.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }
}

impl Default for BinaryJoinEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Scans one triple pattern into a bag of rows over a `width`-variable frame,
/// applying candidate restrictions during the scan.
pub fn scan_pattern(
    store: &Snapshot,
    pat: &EncodedTriplePattern,
    width: usize,
    candidates: &CandidateSet,
) -> Bag {
    scan_pattern_par(store, pat, width, candidates, Parallelism::sequential())
}

/// Minimum index-range rows before [`scan_pattern_par`] fans out to
/// workers; per-row bind/filter work is cheap, so small ranges run inline.
const SCAN_PAR_THRESHOLD: usize = 4096;

/// [`scan_pattern`] with the index range partitioned across workers.
/// Per-chunk rows concatenate in range order, identical to the sequential
/// scan.
pub fn scan_pattern_par(
    store: &Snapshot,
    pat: &EncodedTriplePattern,
    width: usize,
    candidates: &CandidateSet,
    par: Parallelism,
) -> Bag {
    scan_pattern_limited(store, pat, width, candidates, par, usize::MAX)
}

/// [`scan_pattern_par`] under a row budget: exactly the first `cap` rows
/// (in index-range order) of the uncapped scan, at any worker count. Each
/// chunk stops binding once it holds `cap` rows and the in-order
/// concatenation is truncated ([`uo_par::concat_capped`]).
pub fn scan_pattern_limited(
    store: &Snapshot,
    pat: &EncodedTriplePattern,
    width: usize,
    candidates: &CandidateSet,
    par: Parallelism,
    cap: usize,
) -> Bag {
    let mask = pat.var_mask();
    if cap == 0 {
        return Bag { width, maybe: mask, certain: 0, rows: Vec::new() };
    }
    let empty: Box<[Id]> = vec![NO_ID; width].into_boxed_slice();
    let matches = store.match_pattern(pat.s.as_const(), pat.p.as_const(), pat.o.as_const());
    let par = if matches.len() < SCAN_PAR_THRESHOLD { Parallelism::sequential() } else { par };
    let kind = matches.kind;
    let pieces = uo_par::map_chunks(par, matches.rows(), |chunk| {
        let mut out: Vec<Box<[Id]>> = Vec::new();
        for &permuted in chunk {
            if let Some(row) = pat.bind(kind.to_spo(permuted), &empty) {
                if candidates.admits_row(&row) {
                    out.push(row);
                    if out.len() >= cap {
                        break;
                    }
                }
            }
        }
        out
    });
    let rows = uo_par::concat_capped(pieces, cap);
    Bag { width, maybe: mask, certain: if rows.is_empty() { 0 } else { mask }, rows }
}

impl BgpEngine for BinaryJoinEngine {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn evaluate(
        &self,
        store: &Snapshot,
        bgp: &EncodedBgp,
        width: usize,
        candidates: &CandidateSet,
    ) -> Bag {
        self.evaluate_limited(store, bgp, width, candidates, usize::MAX)
    }

    /// Early-terminating evaluation: the budget caps only the *final*
    /// output-producing stage — the last join of a multi-pattern BGP, or
    /// the scan itself for a single pattern. Intermediate relations are
    /// materialized in full so the join order, build-side choices, and
    /// therefore row order match the uncapped run exactly; the result is
    /// the uncapped bag's first `limit` rows.
    fn evaluate_limited(
        &self,
        store: &Snapshot,
        bgp: &EncodedBgp,
        width: usize,
        candidates: &CandidateSet,
        limit: usize,
    ) -> Bag {
        if bgp.patterns.is_empty() {
            let mut unit = Bag::unit(width);
            unit.truncate(limit);
            return unit;
        }
        let par = Parallelism::new(self.threads);
        let order = Estimator::sketch(store, bgp).order();
        let last = order.len() - 1;
        let mut acc: Option<Bag> = None;
        for (step, idx) in order.into_iter().enumerate() {
            let cap = if step == last { limit } else { usize::MAX };
            let rel = if step == 0 {
                // The seed doubles as the output for single-pattern BGPs.
                scan_pattern_limited(store, &bgp.patterns[idx], width, candidates, par, cap)
            } else {
                scan_pattern_par(store, &bgp.patterns[idx], width, candidates, par)
            };
            acc = Some(match acc {
                None => rel,
                Some(prev) => {
                    if prev.is_empty() {
                        // Join with anything stays empty; skip the scan work
                        // of later patterns' joins (the scan above was still
                        // needed to keep this branch simple and correct).
                        prev
                    } else {
                        prev.join_par_capped(&rel, par, cap)
                    }
                }
            });
        }
        acc.unwrap_or_else(|| Bag::unit(width))
    }

    fn estimate_cardinality(&self, store: &Snapshot, bgp: &EncodedBgp) -> f64 {
        Estimator::sketch(store, bgp).cardinality
    }

    fn estimate_cost(&self, store: &Snapshot, bgp: &EncodedBgp) -> f64 {
        let sketch = Estimator::sketch(store, bgp);
        let mut cost = 0.0;
        for (i, step) in sketch.steps.iter().enumerate() {
            let scan = step.scan_count as f64;
            cost += scan; // materializing the relation
            if i > 0 {
                let a = step.card_before;
                let b = scan;
                cost += 2.0 * a.min(b) + a.max(b); // Equation 9
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::encode_bgp;
    use uo_rdf::Term;
    use uo_sparql::algebra::VarTable;
    use uo_sparql::ast::{PatternTerm, TriplePattern};
    use uo_store::TripleStore;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let conv = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                PatternTerm::Var(v.to_string())
            } else {
                PatternTerm::Const(Term::iri(x))
            }
        };
        TriplePattern::new(conv(s), conv(p), conv(o))
    }

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        // Star: alice knows bob, carol; bob knows carol; names for all.
        let knows = Term::iri("http://knows");
        let name = Term::iri("http://name");
        for (s, o) in [("alice", "bob"), ("alice", "carol"), ("bob", "carol")] {
            st.insert_terms(
                &Term::iri(format!("http://{s}")),
                &knows,
                &Term::iri(format!("http://{o}")),
            );
        }
        for n in ["alice", "bob", "carol"] {
            st.insert_terms(&Term::iri(format!("http://{n}")), &name, &Term::literal(n));
        }
        st.build();
        st
    }

    #[test]
    fn evaluates_single_pattern() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?x", "http://knows", "?y")], &mut vt, st.dictionary());
        let bag = BinaryJoinEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.certain, 0b11);
    }

    #[test]
    fn evaluates_join() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(
            &[tp("?x", "http://knows", "?y"), tp("?y", "http://name", "?n")],
            &mut vt,
            st.dictionary(),
        );
        let bag = BinaryJoinEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(bag.len(), 3);
    }

    #[test]
    fn candidates_prune_scan() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?x", "http://knows", "?y")], &mut vt, st.dictionary());
        let alice = st.dictionary().lookup(&Term::iri("http://alice")).unwrap();
        let mut cs = CandidateSet::none();
        cs.restrict(vt.get("x").unwrap(), vec![alice]);
        let bag = BinaryJoinEngine::new().evaluate(&st, &bgp, vt.len(), &cs);
        assert_eq!(bag.len(), 2);
    }

    #[test]
    fn empty_bgp_yields_unit() {
        let st = store();
        let bag =
            BinaryJoinEngine::new().evaluate(&st, &EncodedBgp::default(), 3, &CandidateSet::none());
        assert!(bag.is_unit());
    }

    #[test]
    fn dead_constant_yields_empty() {
        let st = store();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?x", "http://nope", "?y")], &mut vt, st.dictionary());
        let bag = BinaryJoinEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert!(bag.is_empty());
    }

    #[test]
    fn repeated_var_pattern() {
        let mut st = TripleStore::new();
        st.insert_terms(&Term::iri("http://a"), &Term::iri("http://p"), &Term::iri("http://a"));
        st.insert_terms(&Term::iri("http://a"), &Term::iri("http://p"), &Term::iri("http://b"));
        st.build();
        let mut vt = VarTable::new();
        let bgp = encode_bgp(&[tp("?x", "http://p", "?x")], &mut vt, st.dictionary());
        let bag = BinaryJoinEngine::new().evaluate(&st, &bgp, vt.len(), &CandidateSet::none());
        assert_eq!(bag.len(), 1, "only the self-loop matches ?x p ?x");
    }

    #[test]
    fn cost_positive_and_orders_sanely() {
        let st = store();
        let mut vt = VarTable::new();
        let small =
            encode_bgp(&[tp("http://alice", "http://name", "?n")], &mut vt, st.dictionary());
        let big = encode_bgp(
            &[tp("?x", "http://knows", "?y"), tp("?y", "http://name", "?n")],
            &mut vt,
            st.dictionary(),
        );
        let e = BinaryJoinEngine::new();
        assert!(e.estimate_cost(&st, &small) < e.estimate_cost(&st, &big));
    }
}
