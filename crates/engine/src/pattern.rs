//! Dictionary-encoded triple patterns, BGPs and candidate sets.

use uo_rdf::{Dictionary, Id, NO_ID};
use uo_sparql::algebra::{bit, VarId, VarMask, VarTable};
use uo_sparql::ast::{PatternTerm, TriplePattern};
use uo_store::Snapshot;

/// One slot of an encoded triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// A constant term id. Query constants absent from the dataset encode as
    /// `Const(NO_ID)`, which matches nothing.
    Const(Id),
    /// A query variable.
    Var(VarId),
}

impl Slot {
    /// The constant id, if bound; `None` for variables.
    #[inline]
    pub fn as_const(&self) -> Option<Id> {
        match self {
            Slot::Const(id) => Some(*id),
            Slot::Var(_) => None,
        }
    }

    /// The variable, if this slot is one.
    #[inline]
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Slot::Var(v) => Some(*v),
            Slot::Const(_) => None,
        }
    }

    /// Resolves the slot against a partial row: constants stay, bound
    /// variables substitute, unbound variables give `None`.
    #[inline]
    pub fn resolve(&self, row: &[Id]) -> Option<Id> {
        match self {
            Slot::Const(id) => Some(*id),
            Slot::Var(v) => {
                let val = row[*v as usize];
                (val != NO_ID).then_some(val)
            }
        }
    }
}

/// An encoded triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedTriplePattern {
    /// Subject slot.
    pub s: Slot,
    /// Predicate slot.
    pub p: Slot,
    /// Object slot.
    pub o: Slot,
}

impl EncodedTriplePattern {
    /// The three slots in s, p, o order.
    #[inline]
    pub fn slots(&self) -> [Slot; 3] {
        [self.s, self.p, self.o]
    }

    /// Mask of variables appearing anywhere in the pattern.
    pub fn var_mask(&self) -> VarMask {
        self.slots().iter().filter_map(|s| s.as_var()).fold(0, |m, v| m | bit(v))
    }

    /// Exact number of dataset triples matching the pattern with all
    /// variables treated as wildcards (repeated-variable constraints are not
    /// applied here; they can only shrink the count).
    pub fn scan_count(&self, store: &Snapshot) -> usize {
        store.count_pattern(self.s.as_const(), self.p.as_const(), self.o.as_const())
    }

    /// True if the pattern uses the same variable more than once (e.g.
    /// `?x :p ?x`), requiring an equality check during scans.
    pub fn has_repeated_var(&self) -> bool {
        let vars: Vec<VarId> = self.slots().iter().filter_map(|s| s.as_var()).collect();
        let mut seen = 0u64;
        for v in vars {
            if seen & bit(v) != 0 {
                return true;
            }
            seen |= bit(v);
        }
        false
    }

    /// Checks an `[s, p, o]` triple against the pattern under a partial row,
    /// returning the row extended with this pattern's bindings, or `None` on
    /// mismatch.
    pub fn bind(&self, triple: [Id; 3], row: &[Id]) -> Option<Box<[Id]>> {
        let mut out: Box<[Id]> = row.into();
        for (slot, val) in self.slots().into_iter().zip(triple) {
            match slot {
                Slot::Const(c) => {
                    if c != val {
                        return None;
                    }
                }
                Slot::Var(v) => {
                    let cur = out[v as usize];
                    if cur == NO_ID {
                        out[v as usize] = val;
                    } else if cur != val {
                        return None;
                    }
                }
            }
        }
        Some(out)
    }
}

/// An encoded BGP: a set of triple patterns evaluated as one conjunctive
/// subquery (Definition 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct EncodedBgp {
    /// The constituent patterns, in source order.
    pub patterns: Vec<EncodedTriplePattern>,
}

impl EncodedBgp {
    /// Mask of all variables in the BGP.
    pub fn var_mask(&self) -> VarMask {
        self.patterns.iter().fold(0, |m, p| m | p.var_mask())
    }

    /// The variables of the BGP, ascending.
    pub fn variables(&self) -> Vec<VarId> {
        let m = self.var_mask();
        (0..64).filter(|&v| m & (1 << v) != 0).map(|v| v as VarId).collect()
    }

    /// True if any pattern matches nothing because a constant is absent from
    /// the dictionary.
    pub fn has_dead_constant(&self) -> bool {
        self.patterns.iter().any(|p| p.slots().iter().any(|s| s.as_const() == Some(NO_ID)))
    }
}

/// Encodes AST triple patterns against a dictionary and variable table.
///
/// Constants that do not occur in the data become `Const(NO_ID)` (matching
/// nothing) rather than polluting the dictionary.
pub fn encode_bgp(
    patterns: &[TriplePattern],
    vars: &mut VarTable,
    dict: &Dictionary,
) -> EncodedBgp {
    let enc_slot = |t: &PatternTerm, vars: &mut VarTable| match t {
        PatternTerm::Var(name) => Slot::Var(vars.intern(name)),
        PatternTerm::Const(term) => Slot::Const(dict.lookup(term).unwrap_or(NO_ID)),
    };
    EncodedBgp {
        patterns: patterns
            .iter()
            .map(|tp| EncodedTriplePattern {
                s: enc_slot(&tp.subject, vars),
                p: enc_slot(&tp.predicate, vars),
                o: enc_slot(&tp.object, vars),
            })
            .collect(),
    }
}

/// Per-variable candidate value sets (Section 6).
///
/// A variable present in the map may only take values from its sorted list;
/// absent variables are unrestricted.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    per_var: uo_rdf::FxHashMap<VarId, Vec<Id>>,
}

impl CandidateSet {
    /// The unrestricted candidate set.
    pub fn none() -> Self {
        Self::default()
    }

    /// Restricts `v` to the given values (deduplicated and sorted here).
    pub fn restrict(&mut self, v: VarId, mut values: Vec<Id>) {
        values.sort_unstable();
        values.dedup();
        self.per_var.insert(v, values);
    }

    /// The candidate list for `v`, if restricted.
    pub fn get(&self, v: VarId) -> Option<&[Id]> {
        self.per_var.get(&v).map(|v| v.as_slice())
    }

    /// True if no variable is restricted.
    pub fn is_empty(&self) -> bool {
        self.per_var.is_empty()
    }

    /// Number of restricted variables.
    pub fn len(&self) -> usize {
        self.per_var.len()
    }

    /// True if `id` is admissible for `v`.
    #[inline]
    pub fn admits(&self, v: VarId, id: Id) -> bool {
        match self.per_var.get(&v) {
            Some(vals) => vals.binary_search(&id).is_ok(),
            None => true,
        }
    }

    /// Checks a full row against every restriction (unbound slots pass).
    pub fn admits_row(&self, row: &[Id]) -> bool {
        self.per_var.iter().all(|(&v, vals)| {
            let id = row[v as usize];
            id == NO_ID || vals.binary_search(&id).is_ok()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_rdf::Term;
    use uo_store::TripleStore;

    fn setup() -> (TripleStore, VarTable) {
        let mut st = TripleStore::new();
        st.load_ntriples(
            r#"
<http://a> <http://p> <http://b> .
<http://b> <http://p> <http://c> .
<http://a> <http://q> <http://a> .
"#,
        )
        .unwrap();
        st.build();
        (st, VarTable::new())
    }

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let conv = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                PatternTerm::Var(v.to_string())
            } else {
                PatternTerm::Const(Term::iri(x))
            }
        };
        TriplePattern::new(conv(s), conv(p), conv(o))
    }

    #[test]
    fn encode_interns_vars_and_looks_up_consts() {
        let (st, mut vt) = setup();
        let bgp = encode_bgp(&[tp("?x", "http://p", "?y")], &mut vt, st.dictionary());
        assert_eq!(bgp.patterns.len(), 1);
        assert!(matches!(bgp.patterns[0].s, Slot::Var(0)));
        assert!(matches!(bgp.patterns[0].p, Slot::Const(id) if id != NO_ID));
        assert_eq!(vt.len(), 2);
    }

    #[test]
    fn missing_constant_encodes_dead() {
        let (st, mut vt) = setup();
        let bgp = encode_bgp(&[tp("?x", "http://nope", "?y")], &mut vt, st.dictionary());
        assert!(bgp.has_dead_constant());
        assert_eq!(bgp.patterns[0].scan_count(&st), 0);
    }

    #[test]
    fn scan_count_matches_store() {
        let (st, mut vt) = setup();
        let bgp = encode_bgp(&[tp("?x", "http://p", "?y")], &mut vt, st.dictionary());
        assert_eq!(bgp.patterns[0].scan_count(&st), 2);
    }

    #[test]
    fn bind_checks_constants_and_repeats() {
        let (st, mut vt) = setup();
        let bgp = encode_bgp(&[tp("?x", "http://q", "?x")], &mut vt, st.dictionary());
        let pat = bgp.patterns[0];
        assert!(pat.has_repeated_var());
        let a = st.dictionary().lookup(&Term::iri("http://a")).unwrap();
        let b = st.dictionary().lookup(&Term::iri("http://b")).unwrap();
        let q = st.dictionary().lookup(&Term::iri("http://q")).unwrap();
        let row = vec![NO_ID; 1];
        assert!(pat.bind([a, q, a], &row).is_some());
        assert!(pat.bind([a, q, b], &row).is_none());
    }

    #[test]
    fn bind_respects_existing_bindings() {
        let (st, mut vt) = setup();
        let bgp = encode_bgp(&[tp("?x", "http://p", "?y")], &mut vt, st.dictionary());
        let pat = bgp.patterns[0];
        let a = st.dictionary().lookup(&Term::iri("http://a")).unwrap();
        let b = st.dictionary().lookup(&Term::iri("http://b")).unwrap();
        let c = st.dictionary().lookup(&Term::iri("http://c")).unwrap();
        let p = st.dictionary().lookup(&Term::iri("http://p")).unwrap();
        let mut row = vec![NO_ID; 2];
        row[0] = a;
        assert!(pat.bind([a, p, b], &row).is_some());
        assert!(pat.bind([b, p, c], &row).is_none(), "conflicts with ?x = a");
    }

    #[test]
    fn candidate_set_admission() {
        let mut cs = CandidateSet::none();
        assert!(cs.admits(0, 42));
        cs.restrict(0, vec![3, 1, 3]);
        assert!(cs.admits(0, 1));
        assert!(cs.admits(0, 3));
        assert!(!cs.admits(0, 2));
        assert_eq!(cs.get(0), Some(&[1, 3][..]));
        assert!(cs.admits_row(&[1, 99]));
        assert!(cs.admits_row(&[NO_ID, 99]), "unbound passes");
        assert!(!cs.admits_row(&[2, 99]));
    }

    #[test]
    fn bgp_variables_sorted() {
        let (st, mut vt) = setup();
        let bgp = encode_bgp(
            &[tp("?y", "http://p", "?x"), tp("?x", "http://q", "?z")],
            &mut vt,
            st.dictionary(),
        );
        // intern order: y=0, x=1, z=2; variables() is ascending by id.
        assert_eq!(bgp.variables(), vec![0, 1, 2]);
    }
}
