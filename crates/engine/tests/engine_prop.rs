//! Property-based tests at the BGP-engine level: on random BGPs over random
//! stores, both engines must agree with a brute-force reference evaluator
//! (nested compatibility scan over all triples), and candidate restriction
//! must equal post-filtering.

use proptest::prelude::*;
use uo_engine::{encode_bgp, BgpEngine, BinaryJoinEngine, CandidateSet, WcoEngine};
use uo_rdf::{Id, Term, NO_ID};
use uo_sparql::algebra::{Bag, VarTable};
use uo_sparql::ast::{PatternTerm, TriplePattern};
use uo_store::TripleStore;

const N_ENT: u32 = 12;
const N_PRED: u32 = 3;

fn arb_store() -> impl Strategy<Value = TripleStore> {
    prop::collection::vec(((0u32..N_ENT), (0u32..N_PRED), (0u32..N_ENT)), 0..80).prop_map(
        |triples| {
            let mut st = TripleStore::new();
            for (s, p, o) in triples {
                st.insert_terms(
                    &Term::iri(format!("http://e{s}")),
                    &Term::iri(format!("http://p{p}")),
                    &Term::iri(format!("http://e{o}")),
                );
            }
            st.build();
            st
        },
    )
}

/// A random BGP of 1–3 patterns over ≤ 4 variables; patterns after the first
/// reuse an existing variable so the BGP stays connected.
#[derive(Debug, Clone)]
struct RawBgp(Vec<(u8, u32, u8)>); // (s-slot, predicate, o-slot); slot < 4 = var id, ≥ 4 = entity const

fn arb_bgp() -> impl Strategy<Value = RawBgp> {
    prop::collection::vec(((0u8..8), (0u32..N_PRED), (0u8..8)), 1..4).prop_map(|mut pats| {
        // Force connectivity: pattern i > 0 reuses pattern 0's subject slot
        // when both of its slots would be constants or fresh vars.
        if let Some(first) = pats.first().copied() {
            for p in pats.iter_mut().skip(1) {
                if p.0 >= 4 && p.2 >= 4 {
                    p.0 = first.0;
                }
            }
        }
        RawBgp(pats)
    })
}

fn to_ast(raw: &RawBgp) -> Vec<TriplePattern> {
    let slot = |x: u8| {
        if x < 4 {
            PatternTerm::Var(format!("v{x}"))
        } else {
            PatternTerm::Const(Term::iri(format!("http://e{}", x - 4)))
        }
    };
    raw.0
        .iter()
        .map(|&(s, p, o)| {
            TriplePattern::new(
                slot(s),
                PatternTerm::Const(Term::iri(format!("http://p{p}"))),
                slot(o),
            )
        })
        .collect()
}

/// Brute force: nested scan with compatibility.
fn naive_eval(store: &TripleStore, patterns: &[TriplePattern], vars: &mut VarTable) -> Bag {
    let enc = encode_bgp(patterns, vars, store.dictionary());
    let width = vars.len().max(1);
    let mut rows: Vec<Box<[Id]>> = vec![vec![NO_ID; width].into_boxed_slice()];
    for pat in &enc.patterns {
        let mut next = Vec::new();
        for row in &rows {
            for spo in store.match_pattern(None, None, None).iter_spo() {
                if let Some(ext) = pat.bind(spo, row) {
                    next.push(ext);
                }
            }
        }
        rows = next;
    }
    Bag::from_rows(width, rows)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn engines_agree_with_naive(store in arb_store(), raw in arb_bgp()) {
        let patterns = to_ast(&raw);
        let mut vars = VarTable::new();
        let expected = naive_eval(&store, &patterns, &mut vars);
        let mut vt2 = VarTable::new();
        let enc = encode_bgp(&patterns, &mut vt2, store.dictionary());
        let width = vt2.len().max(1);
        let wco = WcoEngine::new().evaluate(&store, &enc, width, &CandidateSet::none());
        let bin = BinaryJoinEngine::new().evaluate(&store, &enc, width, &CandidateSet::none());
        prop_assert_eq!(wco.canonicalized(), expected.canonicalized());
        prop_assert_eq!(bin.canonicalized(), expected.canonicalized());
    }

    #[test]
    fn candidates_equal_post_filter(store in arb_store(), raw in arb_bgp(), cand_ent in prop::collection::vec(0u32..N_ENT, 1..5)) {
        let patterns = to_ast(&raw);
        let mut vars = VarTable::new();
        let enc = encode_bgp(&patterns, &mut vars, store.dictionary());
        let width = vars.len().max(1);
        let Some(v0) = vars.get("v0") else { return Ok(()) };
        let ids: Vec<Id> = cand_ent
            .iter()
            .filter_map(|e| store.dictionary().lookup(&Term::iri(format!("http://e{e}"))))
            .collect();
        let mut cs = CandidateSet::none();
        cs.restrict(v0, ids.clone());
        let mut sorted = ids;
        sorted.sort_unstable();
        sorted.dedup();
        for engine in [&WcoEngine::new() as &dyn BgpEngine, &BinaryJoinEngine::new()] {
            let unrestricted = engine.evaluate(&store, &enc, width, &CandidateSet::none());
            let restricted = engine.evaluate(&store, &enc, width, &cs);
            let filtered: Vec<Box<[Id]>> = {
                let mut rows: Vec<Box<[Id]>> = unrestricted
                    .rows
                    .iter()
                    .filter(|r| {
                        let x = r[v0 as usize];
                        x == NO_ID || sorted.binary_search(&x).is_ok()
                    })
                    .cloned()
                    .collect();
                rows.sort_unstable();
                rows
            };
            prop_assert_eq!(restricted.canonicalized(), filtered, "engine {}", engine.name());
        }
    }

    #[test]
    fn cardinality_estimate_positive_iff_results(store in arb_store(), raw in arb_bgp()) {
        let patterns = to_ast(&raw);
        let mut vars = VarTable::new();
        let enc = encode_bgp(&patterns, &mut vars, store.dictionary());
        let width = vars.len().max(1);
        let wco = WcoEngine::new();
        let actual = wco.evaluate(&store, &enc, width, &CandidateSet::none()).len();
        let est = wco.estimate_cardinality(&store, &enc);
        prop_assert!(est >= 0.0);
        if actual > 0 {
            prop_assert!(est > 0.0, "estimate 0 but {actual} results");
        }
        // The cost is finite and non-negative.
        let cost = wco.estimate_cost(&store, &enc);
        prop_assert!(cost.is_finite() && cost >= 0.0);
    }
}
