//! Binary persistence of a [`Snapshot`] (the `.uost` file format).
//!
//! Loading a large dataset from N-Triples/Turtle re-parses and re-encodes
//! every term; a snapshot file stores the dictionary and the encoded SPO
//! index directly, making reloads I/O-bound. The format is a simple
//! length-prefixed layout:
//!
//! ```text
//! magic "UOST" | version u32 | epoch u64 (v2+) | term-count u32
//!   per term: tag u8, then tag-dependent length-prefixed UTF-8 strings
//! triple-count u64
//!   per triple: s u32, p u32, o u32     (SPO order, deduplicated)
//! ```
//!
//! All integers are little-endian. Version 2 added the MVCC **epoch**
//! right after the version field; version-1 files (no epoch) are still
//! readable and load at epoch 0. Permutation indexes and statistics are
//! recomputed on load (they derive from the SPO index).

use crate::{Snapshot, TripleStore};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;
use uo_par::Parallelism;
use uo_rdf::{Dictionary, Term};

const MAGIC: &[u8; 4] = b"UOST";
const VERSION: u32 = 2;

/// An error while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid snapshot data.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> Result<String, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 28 {
        return Err(corrupt("string length out of range"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("invalid UTF-8 in term"))
}

fn write_term(w: &mut impl Write, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(i) => {
            w.write_all(&[0])?;
            write_str(w, i)
        }
        Term::Blank(b) => {
            w.write_all(&[1])?;
            write_str(w, b)
        }
        Term::Literal { lexical, lang: None, datatype: None } => {
            w.write_all(&[2])?;
            write_str(w, lexical)
        }
        Term::Literal { lexical, lang: Some(l), .. } => {
            w.write_all(&[3])?;
            write_str(w, lexical)?;
            write_str(w, l)
        }
        Term::Literal { lexical, lang: None, datatype: Some(dt) } => {
            w.write_all(&[4])?;
            write_str(w, lexical)?;
            write_str(w, dt)
        }
    }
}

/// Writes a version-2 snapshot of `snap` (a built `TripleStore` coerces).
pub fn write_snapshot(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&snap.epoch().to_le_bytes())?;
    let dict = snap.dictionary();
    w.write_all(&(dict.len() as u32).to_le_bytes())?;
    for (_, term) in dict.iter() {
        write_term(w, term)?;
    }
    w.write_all(&(snap.len() as u64).to_le_bytes())?;
    for t in snap.iter() {
        for c in t.as_array() {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a snapshot (version 1 or 2) into a fresh, built store. Version-1
/// files predate the epoch field and load at epoch 0.
pub fn read_snapshot(r: &mut impl Read) -> Result<TripleStore, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = read_u32(r)?;
    let epoch = match version {
        1 => 0,
        2 => read_u64(r)?,
        v => return Err(corrupt(format!("unsupported version {v}"))),
    };
    let mut dict = Dictionary::new();
    let n_terms = read_u32(r)? as usize;
    for i in 0..n_terms {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let term = match tag[0] {
            0 => Term::iri(read_str(r)?),
            1 => Term::blank(read_str(r)?),
            2 => Term::literal(read_str(r)?),
            3 => {
                let lex = read_str(r)?;
                let lang = read_str(r)?;
                Term::lang_literal(lex, lang)
            }
            4 => {
                let lex = read_str(r)?;
                let dt = read_str(r)?;
                Term::typed_literal(lex, dt)
            }
            t => return Err(corrupt(format!("unknown term tag {t}"))),
        };
        let id = dict.encode(&term);
        if id as usize != i + 1 {
            return Err(corrupt("duplicate term in dictionary section"));
        }
    }
    let n_triples = read_u64(r)? as usize;
    let max_id = n_terms as u32;
    let mut spo = Vec::with_capacity(n_triples.min(1 << 24));
    for _ in 0..n_triples {
        let s = read_u32(r)?;
        let p = read_u32(r)?;
        let o = read_u32(r)?;
        if s == 0 || p == 0 || o == 0 || s > max_id || p > max_id || o > max_id {
            return Err(corrupt("triple id out of range"));
        }
        spo.push([s, p, o]);
    }
    let snap = Snapshot::build_from(Arc::new(dict), spo, epoch, Parallelism::from_env());
    Ok(TripleStore::from_snapshot(Arc::new(snap)))
}

/// Snapshot to a file, **atomically**: the bytes are written to a
/// temporary file in the same directory, fsynced, and renamed over `path`.
/// A crash at any point leaves either the previous file intact or the new
/// one complete — never a half-written snapshot, which matters when `path`
/// is the only checkpoint a durable store has.
pub fn save_to_file(snap: &Snapshot, path: &std::path::Path) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let file = std::fs::File::create(&tmp)?;
    let mut w = io::BufWriter::new(file);
    let write =
        write_snapshot(snap, &mut w).and_then(|()| w.flush()).and_then(|()| w.get_ref().sync_all());
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable (best-effort: not every platform
    // supports opening directories).
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Convenience: load a snapshot from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<TripleStore, SnapshotError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_snapshot(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.load_ntriples(
            r#"
<http://ex/a> <http://ex/knows> <http://ex/b> .
<http://ex/a> <http://ex/name> "Alice"@en .
<http://ex/b> <http://ex/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://ex/knows> <http://ex/a> .
<http://ex/c> <http://ex/name> "plain" .
"#,
        )
        .unwrap();
        st.build();
        st
    }

    /// Serializes in the version-1 layout (no epoch field) — the format
    /// every pre-MVCC build wrote. Kept as a test fixture generator for the
    /// backward-compatibility guarantee.
    fn write_snapshot_v1(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&1u32.to_le_bytes())?;
        let dict = snap.dictionary();
        w.write_all(&(dict.len() as u32).to_le_bytes())?;
        for (_, term) in dict.iter() {
            write_term(w, term)?;
        }
        w.write_all(&(snap.len() as u64).to_le_bytes())?;
        for t in snap.iter() {
            for c in t.as_array() {
                w.write_all(&c.to_le_bytes())?;
            }
        }
        Ok(())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), st.len());
        assert_eq!(loaded.dictionary().len(), st.dictionary().len());
        assert!(st.iter().eq(loaded.iter()));
        // Decoded terms identical.
        for (id, term) in st.dictionary().iter() {
            assert_eq!(loaded.dictionary().decode(id), Some(term));
        }
        // Stats recomputed.
        assert_eq!(loaded.stats().triples, st.stats().triples);
        assert_eq!(loaded.stats().entities, st.stats().entities);
        // The epoch survives the round trip.
        assert_eq!(loaded.snapshot().epoch(), st.snapshot().epoch());
    }

    #[test]
    fn epoch_round_trips_beyond_one() {
        // Advance the epoch with incremental rebuilds, then persist.
        let mut st = sample();
        for i in 0..3 {
            st.insert_terms(
                &Term::iri(format!("http://ex/extra{i}")),
                &Term::iri("http://ex/knows"),
                &Term::iri("http://ex/a"),
            );
            st.build();
        }
        let epoch = st.snapshot().epoch();
        assert!(epoch >= 4);
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.snapshot().epoch(), epoch);
    }

    #[test]
    fn reads_version1_files_at_epoch_zero() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot_v1(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), st.len());
        assert!(st.iter().eq(loaded.iter()));
        assert_eq!(loaded.snapshot().epoch(), 0, "v1 files predate epochs");
        for (id, term) in st.dictionary().iter() {
            assert_eq!(loaded.dictionary().decode(id), Some(term));
        }
    }

    #[test]
    fn rejects_truncation_inside_epoch_field() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        // magic (4) + version (4) + half of the epoch u64.
        buf.truncate(4 + 4 + 4);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupt_version_field() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        match read_snapshot(&mut buf.as_slice()) {
            Err(SnapshotError::Corrupt(m)) => assert!(m.contains("unsupported version")),
            other => panic!("expected corrupt-version error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_snapshot(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_snapshot(&mut buf.as_slice()), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_snapshot(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        // Corrupt the last triple's object id to an enormous value.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_snapshot(&mut buf.as_slice()), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("uo_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_no_temp_left_and_overwrite_is_safe() {
        let dir = std::env::temp_dir().join(format!("uo_snapshot_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        // Overwrite with a different (larger) snapshot: the reader must see
        // either version, and afterwards exactly the new one.
        let mut st2 = sample();
        st2.insert_terms(
            &Term::iri("http://ex/extra"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        st2.build();
        save_to_file(&st2, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st2.len());
        // No temporary residue in the directory.
        let residue: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_preserves_existing_snapshot() {
        let dir = std::env::temp_dir().join(format!("uo_snapshot_keep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        // A save whose temp file cannot even be created (the parent is a
        // file, not a directory) must leave the original untouched.
        let bogus = path.join("impossible.uost");
        assert!(save_to_file(&st, &bogus).is_err());
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let mut st = TripleStore::new();
        st.build();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }
}
