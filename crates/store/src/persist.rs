//! Binary persistence of a [`Snapshot`] (the `.uost` file format).
//!
//! Loading a large dataset from N-Triples/Turtle re-parses and re-encodes
//! every term; a snapshot file stores the dictionary and the encoded
//! indexes directly, making reloads I/O-bound. Three on-disk versions
//! share the `"UOST"` magic (the full byte-level specification lives in
//! `docs/FORMAT.md`):
//!
//! - **v1/v2** — a flat length-prefixed stream: dictionary terms followed
//!   by the SPO rows (v2 added the MVCC epoch). Fully materialized on
//!   load; permutation indexes and statistics are recomputed.
//! - **v3** — the paged container (the `paged` module): page-aligned,
//!   CRC-per-page, footer-indexed, holding every level of the tiered run
//!   stack plus the statistics. Opening one is **lazy** — triple pages
//!   stay on disk until queries touch them, so a store larger than RAM
//!   serves queries cold.
//!
//! [`save_to_file`] writes v3; [`load_from_file`] (and the streaming
//! [`read_snapshot`]) read all three versions. All integers are
//! little-endian.

use crate::paged::{
    open_container, write_container, Backing, ContainerMeta, PageCacheStats, PagedOptions,
    KIND_SNAPSHOT,
};
use crate::{Snapshot, TripleStore};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;
use uo_par::Parallelism;
use uo_rdf::{Dictionary, Term};

const MAGIC: &[u8; 4] = b"UOST";
const VERSION: u32 = 2;
const VERSION_PAGED: u32 = 3;

/// An error while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid snapshot data.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> Result<String, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 28 {
        return Err(corrupt("string length out of range"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("invalid UTF-8 in term"))
}

/// Writes one tagged term record (shared by the v1/v2 stream format and
/// the v3 dictionary section).
pub(crate) fn write_term(w: &mut impl Write, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(i) => {
            w.write_all(&[0])?;
            write_str(w, i)
        }
        Term::Blank(b) => {
            w.write_all(&[1])?;
            write_str(w, b)
        }
        Term::Literal { lexical, lang: None, datatype: None } => {
            w.write_all(&[2])?;
            write_str(w, lexical)
        }
        Term::Literal { lexical, lang: Some(l), .. } => {
            w.write_all(&[3])?;
            write_str(w, lexical)?;
            write_str(w, l)
        }
        Term::Literal { lexical, lang: None, datatype: Some(dt) } => {
            w.write_all(&[4])?;
            write_str(w, lexical)?;
            write_str(w, dt)
        }
    }
}

/// Reads one tagged term record written by [`write_term`].
pub(crate) fn read_term(r: &mut impl Read) -> Result<Term, SnapshotError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Term::iri(read_str(r)?),
        1 => Term::blank(read_str(r)?),
        2 => Term::literal(read_str(r)?),
        3 => {
            let lex = read_str(r)?;
            let lang = read_str(r)?;
            Term::lang_literal(lex, lang)
        }
        4 => {
            let lex = read_str(r)?;
            let dt = read_str(r)?;
            Term::typed_literal(lex, dt)
        }
        t => return Err(corrupt(format!("unknown term tag {t}"))),
    })
}

/// Writes a version-2 snapshot of `snap` (a built `TripleStore` coerces).
/// The flat stream format; [`save_to_file`] writes the paged v3 layout.
pub fn write_snapshot(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&snap.epoch().to_le_bytes())?;
    let dict = snap.dictionary();
    w.write_all(&(dict.len() as u32).to_le_bytes())?;
    for (_, term) in dict.iter() {
        write_term(w, term)?;
    }
    w.write_all(&(snap.len() as u64).to_le_bytes())?;
    for t in snap.iter() {
        for c in t.as_array() {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Builds a fully-wired store from an opened v3 container.
fn store_from_backing(backing: Backing, opts: PagedOptions) -> Result<TripleStore, SnapshotError> {
    let c = open_container(backing, opts, Arc::new(PageCacheStats::default()))?;
    if c.kind != KIND_SNAPSHOT {
        return Err(corrupt("container is a run file, not a snapshot"));
    }
    let dict = c.dict.ok_or_else(|| corrupt("snapshot container missing its dictionary"))?;
    let snap = Snapshot {
        dict: Arc::new(dict),
        epoch: c.epoch,
        levels: c.levels,
        len: c.len as usize,
        next_run_id: c.next_run_id,
        stats: c.stats,
    };
    Ok(TripleStore::from_snapshot(Arc::new(snap)))
}

/// Reads a snapshot (version 1, 2, or 3) into a fresh, built store.
/// Version-1 files predate the epoch field and load at epoch 0. A
/// version-3 stream is buffered in memory (the paged layout is random
/// access); prefer [`load_from_file`] for lazy page loading off disk.
pub fn read_snapshot(r: &mut impl Read) -> Result<TripleStore, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = read_u32(r)?;
    let epoch = match version {
        1 => 0,
        2 => read_u64(r)?,
        VERSION_PAGED => {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&VERSION_PAGED.to_le_bytes());
            r.read_to_end(&mut bytes)?;
            return store_from_backing(Backing::Mem(bytes), PagedOptions::default());
        }
        v => return Err(corrupt(format!("unsupported version {v}"))),
    };
    let mut dict = Dictionary::new();
    let n_terms = read_u32(r)? as usize;
    for i in 0..n_terms {
        let term = read_term(r)?;
        let id = dict.encode(&term);
        if id as usize != i + 1 {
            return Err(corrupt("duplicate term in dictionary section"));
        }
    }
    let n_triples = read_u64(r)? as usize;
    let max_id = n_terms as u32;
    let mut spo = Vec::with_capacity(n_triples.min(1 << 24));
    for _ in 0..n_triples {
        let s = read_u32(r)?;
        let p = read_u32(r)?;
        let o = read_u32(r)?;
        if s == 0 || p == 0 || o == 0 || s > max_id || p > max_id || o > max_id {
            return Err(corrupt("triple id out of range"));
        }
        spo.push([s, p, o]);
    }
    let snap = Snapshot::build_from(Arc::new(dict), spo, epoch, Parallelism::from_env());
    Ok(TripleStore::from_snapshot(Arc::new(snap)))
}

/// Flattens a [`SnapshotError`] into the `io::Error` the save path reports.
fn io_error(e: SnapshotError) -> io::Error {
    match e {
        SnapshotError::Io(e) => e,
        SnapshotError::Corrupt(m) => io::Error::other(m),
    }
}

/// Snapshot to a file in the paged v3 layout, **atomically**: the bytes
/// are written to a temporary file in the same directory, fsynced, and
/// renamed over `path`. A crash at any point leaves either the previous
/// file intact or the new one complete — never a half-written snapshot,
/// which matters when `path` is the only checkpoint a durable store has.
pub fn save_to_file(snap: &Snapshot, path: &std::path::Path) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let file = std::fs::File::create(&tmp)?;
    let mut w = io::BufWriter::new(file);
    let meta = ContainerMeta {
        kind: KIND_SNAPSHOT,
        epoch: snap.epoch(),
        len: snap.len() as u64,
        next_run_id: snap.next_run_id,
        dict: Some(snap.dictionary()),
        stats: Some(snap.stats()),
        levels: &snap.levels,
    };
    let write = write_container(&mut w, &meta)
        .map_err(io_error)
        .and_then(|()| w.flush())
        .and_then(|()| w.get_ref().sync_all());
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable (best-effort: not every platform
    // supports opening directories).
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load a snapshot from a file with the default page-cache budget.
pub fn load_from_file(path: &std::path::Path) -> Result<TripleStore, SnapshotError> {
    load_from_file_with(path, PagedOptions::default())
}

/// Load a snapshot from a file. A v3 file is opened **lazily** — only the
/// header, footer, and dictionary are read eagerly; triple pages are
/// fetched on demand into a cache bounded by `opts.cache_bytes`. v1/v2
/// files are materialized in full (they predate paging).
pub fn load_from_file_with(
    path: &std::path::Path,
    opts: PagedOptions,
) -> Result<TripleStore, SnapshotError> {
    let f = std::fs::File::open(path)?;
    let mut hdr = [0u8; 8];
    let is_paged = {
        use std::os::unix::fs::FileExt;
        f.read_exact_at(&mut hdr, 0).is_ok()
            && &hdr[0..4] == MAGIC
            && u32::from_le_bytes(hdr[4..8].try_into().unwrap()) == VERSION_PAGED
    };
    if is_paged {
        store_from_backing(Backing::File(f), opts)
    } else {
        read_snapshot(&mut io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.load_ntriples(
            r#"
<http://ex/a> <http://ex/knows> <http://ex/b> .
<http://ex/a> <http://ex/name> "Alice"@en .
<http://ex/b> <http://ex/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://ex/knows> <http://ex/a> .
<http://ex/c> <http://ex/name> "plain" .
"#,
        )
        .unwrap();
        st.build();
        st
    }

    /// Serializes in the version-1 layout (no epoch field) — the format
    /// every pre-MVCC build wrote. Kept as a test fixture generator for the
    /// backward-compatibility guarantee.
    fn write_snapshot_v1(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&1u32.to_le_bytes())?;
        let dict = snap.dictionary();
        w.write_all(&(dict.len() as u32).to_le_bytes())?;
        for (_, term) in dict.iter() {
            write_term(w, term)?;
        }
        w.write_all(&(snap.len() as u64).to_le_bytes())?;
        for t in snap.iter() {
            for c in t.as_array() {
                w.write_all(&c.to_le_bytes())?;
            }
        }
        Ok(())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), st.len());
        assert_eq!(loaded.dictionary().len(), st.dictionary().len());
        assert!(st.iter().eq(loaded.iter()));
        // Decoded terms identical.
        for (id, term) in st.dictionary().iter() {
            assert_eq!(loaded.dictionary().decode(id), Some(term));
        }
        // Stats recomputed.
        assert_eq!(loaded.stats().triples, st.stats().triples);
        assert_eq!(loaded.stats().entities, st.stats().entities);
        // The epoch survives the round trip.
        assert_eq!(loaded.snapshot().epoch(), st.snapshot().epoch());
    }

    #[test]
    fn epoch_round_trips_beyond_one() {
        // Advance the epoch with incremental rebuilds, then persist.
        let mut st = sample();
        for i in 0..3 {
            st.insert_terms(
                &Term::iri(format!("http://ex/extra{i}")),
                &Term::iri("http://ex/knows"),
                &Term::iri("http://ex/a"),
            );
            st.build();
        }
        let epoch = st.snapshot().epoch();
        assert!(epoch >= 4);
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.snapshot().epoch(), epoch);
    }

    #[test]
    fn reads_version1_files_at_epoch_zero() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot_v1(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), st.len());
        assert!(st.iter().eq(loaded.iter()));
        assert_eq!(loaded.snapshot().epoch(), 0, "v1 files predate epochs");
        for (id, term) in st.dictionary().iter() {
            assert_eq!(loaded.dictionary().decode(id), Some(term));
        }
    }

    #[test]
    fn rejects_truncation_inside_epoch_field() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        // magic (4) + version (4) + half of the epoch u64.
        buf.truncate(4 + 4 + 4);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupt_version_field() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        match read_snapshot(&mut buf.as_slice()) {
            Err(SnapshotError::Corrupt(m)) => assert!(m.contains("unsupported version")),
            other => panic!("expected corrupt-version error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_snapshot(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_snapshot(&mut buf.as_slice()), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_snapshot(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let st = sample();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        // Corrupt the last triple's object id to an enormous value.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_snapshot(&mut buf.as_slice()), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("uo_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_no_temp_left_and_overwrite_is_safe() {
        let dir = std::env::temp_dir().join(format!("uo_snapshot_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        // Overwrite with a different (larger) snapshot: the reader must see
        // either version, and afterwards exactly the new one.
        let mut st2 = sample();
        st2.insert_terms(
            &Term::iri("http://ex/extra"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        st2.build();
        save_to_file(&st2, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st2.len());
        // No temporary residue in the directory.
        let residue: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_preserves_existing_snapshot() {
        let dir = std::env::temp_dir().join(format!("uo_snapshot_keep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        // A save whose temp file cannot even be created (the parent is a
        // file, not a directory) must leave the original untouched.
        let bogus = path.join("impossible.uost");
        assert!(save_to_file(&st, &bogus).is_err());
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let mut st = TripleStore::new();
        st.build();
        let mut buf = Vec::new();
        write_snapshot(&st, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("uo_persist_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn v3_file_round_trip_reads_lazily() {
        let dir = temp_dir("v3rt");
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        // A deliberately tiny cache budget: every page still loads (at
        // least one page is always retained), evictions just increase.
        let loaded = load_from_file_with(&path, PagedOptions { cache_bytes: 4096 }).unwrap();
        assert_eq!(loaded.snapshot().epoch(), st.snapshot().epoch());
        assert_eq!(loaded.len(), st.len());
        assert!(st.iter().eq(loaded.iter()));
        for (id, term) in st.dictionary().iter() {
            assert_eq!(loaded.dictionary().decode(id), Some(term));
        }
        assert_eq!(loaded.stats().triples, st.stats().triples);
        assert_eq!(loaded.stats().entities, st.stats().entities);
        assert_eq!(loaded.stats().literals, st.stats().literals);
        let cache = loaded.snapshot().page_cache_stats().expect("disk-backed snapshot");
        assert!(cache.misses > 0, "the full scan had to fetch pages");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_stream_round_trip_via_read_snapshot() {
        let dir = temp_dir("v3stream");
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let loaded = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.len(), st.len());
        assert!(st.iter().eq(loaded.iter()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_corrupt_row_page_fails_cleanly_with_crc_error() {
        let dir = temp_dir("v3crc");
        let path = dir.join("store.uost");
        let st = sample();
        save_to_file(&st, &path).unwrap();
        // Page 0 is the header, page 1 the dictionary; the first row page
        // (the SPO add run) starts at page 2. Flip one payload byte there.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2 * 4096] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Opening stays lazy and succeeds — the damage is found on read.
        let loaded = load_from_file(&path).unwrap();
        match loaded.snapshot().try_match_pattern(None, None, None) {
            Err(SnapshotError::Corrupt(m)) => {
                assert!(m.contains("crc mismatch"), "clean per-page error, got: {m}")
            }
            other => panic!("expected a page CRC error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_rejects_truncated_trailer() {
        let dir = temp_dir("v3trunc");
        let path = dir.join("store.uost");
        save_to_file(&sample(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_from_file(&path), Err(SnapshotError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_multi_level_snapshot_round_trips_with_tombstones() {
        let dir = temp_dir("v3levels");
        let path = dir.join("store.uost");
        // Two incremental commits on top of the bulk build: the saved file
        // carries three levels including tombstones.
        let mut w = crate::StoreWriter::from_snapshot(sample().snapshot());
        w.insert_terms(
            &Term::iri("http://ex/new"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        w.commit_with(Parallelism::sequential());
        assert!(w.delete_terms(
            &Term::iri("http://ex/a"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/b"),
        ));
        w.commit_with(Parallelism::sequential());
        let st = TripleStore::from_snapshot(w.snapshot());
        assert!(st.snapshot().level_count() >= 3);
        save_to_file(&st, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), st.len());
        assert_eq!(loaded.snapshot().level_count(), st.snapshot().level_count());
        assert!(st.iter().eq(loaded.iter()));
        assert_eq!(loaded.stats().triples, st.stats().triples);
        std::fs::remove_dir_all(&dir).ok();
    }
}
