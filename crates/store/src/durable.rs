//! The [`DurableStore`]: crash-safe persistence under the MVCC store.
//!
//! A durable store owns one **data directory** with a simple layout:
//!
//! ```text
//! <data-dir>/
//!   manifest-<epoch>.uomf   incremental checkpoint manifests (small)
//!   runs/run-<id>.uorun     immutable sorted-run files (paged v3, lazy)
//!   snapshot-<epoch>.uost   legacy whole-store checkpoints (still readable)
//!   wal/wal-<epoch>.log     the segmented write-ahead log (uo_wal)
//! ```
//!
//! and enforces the log-before-visibility discipline: an update is applied
//! to the in-memory [`StoreWriter`] (which has no externally visible
//! effect), **journaled + fsynced** per the configured [`FsyncPolicy`], and
//! only then published to readers / acknowledged to the client. A crash at
//! any point therefore loses only updates that were never acknowledged;
//! under `fsync=always` an acknowledged update is *never* lost.
//!
//! [`DurableStore::open`] recovers: it loads the **newest valid
//! checkpoint** (tolerating a corrupt or missing newest by falling back to
//! the previous one, and to the empty store when the directory is fresh),
//! then **replays the log tail** — every record with an epoch above the
//! checkpoint's — through a caller-supplied replay function, verifying
//! after each record that the writer landed on exactly the epoch the
//! record was stamped with. Replay goes through the ordinary
//! `StoreWriter::commit` machinery, so it takes the O(K)-per-commit
//! level-append path, never a base rewrite; [`RecoveryReport`] carries the
//! accumulated [`CommitStats`](crate::CommitStats) totals as proof.
//!
//! The replay function is injected (rather than baked in) because payloads
//! are canonical SPARQL Update serializations: parsing and re-running them
//! needs the query engine, which lives *above* this crate. `uo_core`
//! provides the standard replayer and the `run_update`-shaped entry points.
//!
//! # Incremental checkpoints
//!
//! A checkpoint persists the tiered run stack **incrementally**: each
//! level of the snapshot becomes one immutable run file
//! (`runs/run-<id>.uorun`, a single-level paged v3 container) that is
//! written only if it does not exist yet — levels already persisted by a
//! previous checkpoint are reused by reference. A small **manifest**
//! (`manifest-<epoch>.uomf`) then records the dictionary, statistics, and
//! the level table, and is written atomically. A checkpoint after K new
//! commits therefore writes O(K) rows plus a manifest, not the whole
//! store. Loading a manifest opens the run files **lazily** (pages fetched
//! on demand, budget [`DurableOptions::page_cache_bytes`]), so recovery of
//! a beyond-RAM store is cheap and cold queries work immediately.
//!
//! Run ids are allocated monotonically within a lineage, and
//! [`DurableStore::open`] raises the writer's next-run-id above every run
//! file on disk — so a run file name is written at most once, which is
//! what makes the write-if-absent reuse sound even across crash/fallback
//! lineages. Orphaned run files (from pruned manifests or abandoned
//! lineages) are garbage-collected by
//! [`note_checkpoint`](DurableStore::note_checkpoint) once no retained
//! manifest references them — skipped conservatively if any manifest is
//! unreadable.
//!
//! **Retention** is unchanged from the legacy whole-file scheme: two
//! checkpoints are kept (the newest and the one before it); log segments
//! are retired against the **older** of the two, so even if the newest
//! checkpoint were lost, the previous checkpoint plus the surviving log
//! still reconstructs every acknowledged commit.

use crate::paged::{
    decode_dict, decode_stats, encode_dict, encode_stats, open_container, write_container, Backing,
    ContainerMeta, Cursor, PageCacheStats, PagedOptions, KIND_RUN,
};
use crate::runs::Level;
use crate::stats::DatasetStats;
use crate::writer::StoreWriter;
use crate::{Snapshot, SnapshotError};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uo_obs::Tracer;
pub use uo_wal::{FsyncPolicy, WalOptions, WalStats};

/// Configuration of a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// When journal appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Log segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// How many checkpoint snapshots to retain (minimum 1). With 2 (the
    /// default), log segments are retired against the *older* retained
    /// checkpoint, keeping a full fallback lineage on disk.
    pub retain_checkpoints: usize,
    /// Page-cache byte budget per paged file opened during recovery (run
    /// files and v3 snapshot checkpoints are loaded lazily).
    pub page_cache_bytes: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            retain_checkpoints: 2,
            page_cache_bytes: 64 << 20,
        }
    }
}

/// An error while opening or operating a durable store.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid data that recovery cannot repair.
    Corrupt(String),
    /// A journaled record failed to replay (unparsable payload, or the
    /// replay landed on a different epoch than the record was stamped
    /// with — both mean the log and the store disagree).
    Replay(String),
    /// Another process holds the data directory's advisory lock.
    Locked(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store I/O error: {e}"),
            DurableError::Corrupt(m) => write!(f, "corrupt durable store: {m}"),
            DurableError::Replay(m) => write!(f, "wal replay failed: {m}"),
            DurableError::Locked(m) => write!(f, "durable store locked: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<uo_wal::WalError> for DurableError {
    fn from(e: uo_wal::WalError) -> Self {
        match e {
            uo_wal::WalError::Io(e) => DurableError::Io(e),
            uo_wal::WalError::Corrupt(m) => DurableError::Corrupt(m),
        }
    }
}

/// What [`DurableStore::open`] reconstructed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint the recovery started from (0 = none).
    pub checkpoint_epoch: u64,
    /// Checkpoint files that failed to load and were skipped.
    pub checkpoints_skipped: usize,
    /// Log records replayed on top of the checkpoint.
    pub replayed_ops: usize,
    /// Bytes cut from the log's torn tail (0 = clean shutdown).
    pub truncated_bytes: u64,
    /// Delta rows sorted across every replayed commit — bounded by the
    /// replayed deltas, proof that replay merged instead of re-sorting.
    pub replay_rows_sorted: usize,
    /// Base rows merged across every replayed commit.
    pub replay_rows_merged: usize,
}

/// Live gauges a serving layer can read without locking the store: every
/// mutating operation on the [`DurableStore`] refreshes them.
#[derive(Debug, Default)]
pub struct DurableMetrics {
    /// Log segment files.
    pub wal_segments: AtomicUsize,
    /// Total log bytes on disk.
    pub wal_bytes: AtomicU64,
    /// Records currently in the log.
    pub wal_records: AtomicU64,
    /// Highest epoch guaranteed fsynced.
    pub synced_epoch: AtomicU64,
    /// Epoch of the newest checkpoint.
    pub last_checkpoint_epoch: AtomicU64,
    /// Records replayed by the most recent open.
    pub recovered_ops: AtomicUsize,
    /// Wall nanoseconds per WAL fsync (every fsync the log issues on its
    /// active segment, whatever the policy).
    pub fsync_hist: uo_obs::Histogram,
    /// Wall nanoseconds per journaled commit: the full
    /// [`DurableStore::journal`] call, i.e. append + policy fsync.
    pub commit_hist: uo_obs::Histogram,
}

/// What one checkpoint did.
#[derive(Debug, Clone, Default)]
pub struct CheckpointReport {
    /// Epoch the checkpoint persisted.
    pub epoch: u64,
    /// Log segments retired.
    pub segments_removed: usize,
    /// Log bytes freed.
    pub bytes_removed: u64,
    /// Run files this checkpoint wrote (levels not yet on disk).
    pub runs_written: usize,
    /// Levels reused by reference — their run files already existed.
    pub runs_reused: usize,
}

/// Crash-safe wrapper around a [`StoreWriter`]. See the module docs.
pub struct DurableStore {
    dir: PathBuf,
    opts: DurableOptions,
    wal: uo_wal::Wal,
    writer: StoreWriter,
    recovery: RecoveryReport,
    metrics: Arc<DurableMetrics>,
    /// Checkpoint epochs proven loadable (validated by this open, or
    /// written by this store), newest first. Retention — pruning old
    /// checkpoint files and retiring log segments — only ever counts
    /// these: an on-disk checkpoint that was never validated must not
    /// cost the log segments the real fallback needs.
    trusted_checkpoints: Vec<u64>,
    /// Span recorder for the commit pipeline — WAL appends, policy
    /// fsyncs, delta merges (via the inner writer) and recovery. Off by
    /// default; installed at open ([`DurableStore::open_traced`]) or via
    /// [`set_tracer`](DurableStore::set_tracer).
    tracer: Tracer,
    /// Parent span id for the next journaled commit's spans (0 = root).
    trace_parent: u64,
    /// Advisory `flock` on `<dir>/LOCK`, held for the store's lifetime so
    /// a second process (another server, an offline `compact`) cannot
    /// interleave writes into the same log. The OS releases it on any
    /// exit, including `kill -9` — no stale-lock recovery needed.
    _lock: fs::File,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("epoch", &self.writer.snapshot().epoch())
            .field("wal", &self.wal.stats())
            .finish()
    }
}

/// The file name of a legacy whole-store checkpoint at `epoch`.
pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:020}.uost"))
}

/// The file name of an incremental checkpoint manifest at `epoch`.
pub fn manifest_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("manifest-{epoch:020}.uomf"))
}

/// The file of the immutable run with the given id.
fn run_path(dir: &Path, id: u64) -> PathBuf {
    dir.join("runs").join(format!("run-{id:020}.uorun"))
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".uost")?.parse().ok()
}

fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-")?.strip_suffix(".uomf")?.parse().ok()
}

fn parse_run_name(name: &str) -> Option<u64> {
    name.strip_prefix("run-")?.strip_suffix(".uorun")?.parse().ok()
}

fn list_by(dir: &Path, parse: impl Fn(&str) -> Option<u64>) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(e) = entry.file_name().to_str().and_then(&parse) {
            out.push(e);
        }
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    Ok(out)
}

/// Epochs of all legacy checkpoint files in `dir`, newest first.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<u64>> {
    list_by(dir, parse_checkpoint_name)
}

/// Epochs of all checkpoint manifests in `dir`, newest first.
fn list_manifests(dir: &Path) -> io::Result<Vec<u64>> {
    list_by(dir, parse_manifest_name)
}

/// Ids of all run files in `dir/runs`, newest first; `[]` when the
/// subdirectory does not exist yet.
fn list_runs(dir: &Path) -> io::Result<Vec<u64>> {
    match list_by(&dir.join("runs"), parse_run_name) {
        Ok(ids) => Ok(ids),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Checkpoint epochs present in `dir` in either representation (manifest
/// or legacy whole-store file), newest first, deduplicated.
fn list_checkpoint_epochs(dir: &Path) -> io::Result<Vec<u64>> {
    let mut epochs = list_manifests(dir)?;
    epochs.extend(list_checkpoints(dir)?);
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    epochs.dedup();
    Ok(epochs)
}

/// Writes `bytes` to `path` atomically: temp file, fsync, rename, fsync of
/// the containing directory.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        use io::Write;
        if let Err(e) = f.write_all(bytes).and_then(|()| f.sync_all()) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// -- manifest encoding ------------------------------------------------------

const MANIFEST_MAGIC: &[u8; 4] = b"UOMF";
const MANIFEST_VERSION: u32 = 1;

/// A decoded checkpoint manifest: everything a snapshot holds except the
/// rows themselves, which live in the referenced run files.
struct Manifest {
    epoch: u64,
    len: u64,
    next_run_id: u64,
    dict: uo_rdf::Dictionary,
    stats: DatasetStats,
    /// Per level: run id + the six section row counts
    /// (adds SPO/POS/OSP, dels SPO/POS/OSP), bottom level first.
    levels: Vec<(u64, [u64; 6])>,
}

fn encode_manifest(snap: &Snapshot) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(MANIFEST_MAGIC);
    b.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    b.extend_from_slice(&snap.epoch().to_le_bytes());
    b.extend_from_slice(&(snap.len() as u64).to_le_bytes());
    b.extend_from_slice(&snap.next_run_id.to_le_bytes());
    let dict = encode_dict(snap.dictionary());
    b.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    b.extend_from_slice(&dict);
    encode_stats(snap.stats(), &mut b);
    b.extend_from_slice(&(snap.levels.len() as u32).to_le_bytes());
    for level in &snap.levels {
        b.extend_from_slice(&level.id.to_le_bytes());
        for run in level.adds.iter().chain(level.dels.iter()) {
            b.extend_from_slice(&(run.len() as u64).to_le_bytes());
        }
    }
    let crc = uo_wal::crc32(&b);
    b.extend_from_slice(&crc.to_le_bytes());
    b
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, SnapshotError> {
    let corrupt = |m: &str| SnapshotError::Corrupt(format!("manifest: {m}"));
    if bytes.len() < 8 + 4 {
        return Err(corrupt("too small"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if uo_wal::crc32(body) != want {
        return Err(corrupt("crc mismatch"));
    }
    let mut cur = Cursor::new(body);
    if cur.take(4)? != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = cur.u32()?;
    if version != MANIFEST_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let epoch = cur.u64()?;
    let len = cur.u64()?;
    let next_run_id = cur.u64()?;
    let dict_len = cur.u64()? as usize;
    let dict = decode_dict(cur.take(dict_len)?)?;
    let stats = decode_stats(&mut cur)?;
    let level_count = cur.u32()? as usize;
    if level_count > 1 << 20 {
        return Err(corrupt("level count out of range"));
    }
    let mut levels = Vec::with_capacity(level_count);
    for _ in 0..level_count {
        let id = cur.u64()?;
        let mut counts = [0u64; 6];
        for c in &mut counts {
            *c = cur.u64()?;
        }
        levels.push((id, counts));
    }
    if !cur.is_done() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Manifest { epoch, len, next_run_id, dict, stats, levels })
}

/// Writes one level as an immutable single-level run container.
fn write_run_file(path: &Path, level: &Arc<Level>) -> io::Result<()> {
    let mut bytes = Vec::new();
    let meta = ContainerMeta {
        kind: KIND_RUN,
        epoch: 0,
        len: 0,
        next_run_id: 0,
        dict: None,
        stats: None,
        levels: std::slice::from_ref(level),
    };
    write_container(&mut bytes, &meta).map_err(|e| match e {
        SnapshotError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    })?;
    write_atomic(path, &bytes)
}

/// Opens the run file for `id` lazily and returns its level, validating
/// the container kind, level id and section row counts against the
/// manifest's expectations.
fn open_run_file(
    dir: &Path,
    id: u64,
    counts: &[u64; 6],
    cache_bytes: usize,
    cache_stats: &Arc<PageCacheStats>,
) -> Result<Arc<Level>, SnapshotError> {
    let corrupt = |m: String| SnapshotError::Corrupt(m);
    let file = fs::File::open(run_path(dir, id))?;
    let c =
        open_container(Backing::File(file), PagedOptions { cache_bytes }, Arc::clone(cache_stats))?;
    if c.kind != KIND_RUN {
        return Err(corrupt(format!("run {id}: not a run container")));
    }
    let [level] = <[Arc<Level>; 1]>::try_from(c.levels)
        .map_err(|_| corrupt(format!("run {id}: expected exactly one level")))?;
    if level.id != id {
        return Err(corrupt(format!("run {id}: file holds level {}", level.id)));
    }
    let got: Vec<u64> =
        level.adds.iter().chain(level.dels.iter()).map(|r| r.len() as u64).collect();
    if got != counts {
        return Err(corrupt(format!("run {id}: row counts disagree with the manifest")));
    }
    Ok(level)
}

/// Loads the checkpoint described by `manifest-<epoch>.uomf`, opening its
/// run files lazily (shared page-cache counters, per-file `cache_bytes`
/// budget).
fn load_manifest_snapshot(
    dir: &Path,
    epoch: u64,
    cache_bytes: usize,
) -> Result<Snapshot, SnapshotError> {
    let m = decode_manifest(&fs::read(manifest_path(dir, epoch))?)?;
    if m.epoch != epoch {
        return Err(SnapshotError::Corrupt("manifest: file name lies about its epoch".into()));
    }
    let cache_stats = Arc::new(PageCacheStats::default());
    let mut levels = Vec::with_capacity(m.levels.len());
    let mut live: i64 = 0;
    for (id, counts) in &m.levels {
        live += counts[0] as i64 - counts[3] as i64;
        levels.push(open_run_file(dir, *id, counts, cache_bytes, &cache_stats)?);
    }
    if live != m.len as i64 {
        return Err(SnapshotError::Corrupt(
            "manifest: live row count inconsistent with level table".into(),
        ));
    }
    Ok(Snapshot {
        dict: Arc::new(m.dict),
        epoch: m.epoch,
        levels,
        len: m.len as usize,
        next_run_id: m.next_run_id,
        stats: m.stats,
    })
}

/// What [`write_checkpoint_file`] persisted.
#[derive(Debug, Clone)]
pub struct CheckpointWrite {
    /// Path of the manifest file.
    pub path: PathBuf,
    /// Run files written (levels that were not on disk yet).
    pub runs_written: usize,
    /// Levels whose run file already existed and was reused.
    pub runs_reused: usize,
}

/// Persists `snap` as an incremental checkpoint in `dir`: one immutable
/// run file per level **that is not on disk yet** (run ids are allocated
/// monotonically per lineage, so an existing `runs/run-<id>.uorun` already
/// holds exactly this level), then the manifest, written atomically last —
/// a crash at any point leaves either the previous checkpoint or the new
/// one, never a half state. Safe to call without any store lock — a
/// snapshot is immutable — which is how the server's background
/// checkpointer avoids stalling writers during the file writes.
pub fn write_checkpoint_file(dir: &Path, snap: &Snapshot) -> io::Result<CheckpointWrite> {
    fs::create_dir_all(dir.join("runs"))?;
    let mut runs_written = 0;
    let mut runs_reused = 0;
    for level in &snap.levels {
        let path = run_path(dir, level.id);
        if path.exists() {
            runs_reused += 1;
        } else {
            write_run_file(&path, level)?;
            runs_written += 1;
        }
    }
    let path = manifest_path(dir, snap.epoch());
    write_atomic(&path, &encode_manifest(snap))?;
    Ok(CheckpointWrite { path, runs_written, runs_reused })
}

impl DurableStore {
    /// Opens (or creates) the durable store in `dir`, recovering to the
    /// last durable state: newest loadable checkpoint + full log-tail
    /// replay. `replay` applies one journaled payload to the writer **and
    /// commits it** (typically: parse the canonical update serialization,
    /// run it); after each record the writer must sit at exactly the
    /// record's stamped epoch, or the open fails with
    /// [`DurableError::Replay`].
    pub fn open(
        dir: &Path,
        opts: DurableOptions,
        replay: impl FnMut(&mut StoreWriter, &[u8]) -> Result<(), String>,
    ) -> Result<DurableStore, DurableError> {
        DurableStore::open_traced(dir, opts, Tracer::off(), replay)
    }

    /// [`open`](DurableStore::open) with a span recorder: recovery emits
    /// an `open` root span (category `recovery`) with `load_checkpoint`
    /// and `wal_replay` children, and the tracer stays installed on the
    /// store (and its writer) for the commit pipeline's spans.
    pub fn open_traced(
        dir: &Path,
        opts: DurableOptions,
        tracer: Tracer,
        mut replay: impl FnMut(&mut StoreWriter, &[u8]) -> Result<(), String>,
    ) -> Result<DurableStore, DurableError> {
        let open_span = tracer.start(0, "recovery", "open");
        fs::create_dir_all(dir)?;
        // One process per data dir: two writers interleaving appends into
        // the same active segment would corrupt the log even though each
        // follows the protocol. Advisory flock, auto-released on death.
        let lock = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join("LOCK"))?;
        if let Err(e) = lock.try_lock() {
            return Err(DurableError::Locked(format!(
                "{} is in use by another process ({e})",
                dir.display()
            )));
        }
        // Sweep temp files orphaned by a crash mid-write (the atomic rename
        // never promoted them); run-file temps can be large, and a crash
        // loop would otherwise accumulate them indefinitely.
        let sweep_tmp = |d: &Path| -> io::Result<()> {
            for entry in fs::read_dir(d)? {
                let entry = entry?;
                if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
                    let _ = fs::remove_file(entry.path());
                }
            }
            Ok(())
        };
        sweep_tmp(dir)?;
        match sweep_tmp(&dir.join("runs")) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            r => r?,
        }
        let mut recovery = RecoveryReport::default();

        // Newest valid checkpoint wins — incremental manifests and legacy
        // whole-store files compete in one epoch order, manifest preferred
        // at a tie. Unloadable ones are skipped (the atomic writer makes
        // them near-impossible, but a half-copied backup or a bad disk
        // should degrade, not brick the store) and structurally-corrupt
        // ones deleted — they must never be counted as retention
        // fallbacks, or a later checkpoint would retire the log segments
        // the *real* fallback still needs. Deleting a manifest never
        // touches its run files: other manifests may share them.
        let cp_span = tracer.start(open_span.id, "recovery", "load_checkpoint");
        let mut base: Option<Arc<Snapshot>> = None;
        'epochs: for epoch in list_checkpoint_epochs(dir)? {
            if manifest_path(dir, epoch).exists() {
                match load_manifest_snapshot(dir, epoch, opts.page_cache_bytes) {
                    Ok(snap) => {
                        recovery.checkpoint_epoch = epoch;
                        base = Some(Arc::new(snap));
                        break 'epochs;
                    }
                    Err(SnapshotError::Corrupt(_)) => {
                        recovery.checkpoints_skipped += 1;
                        let _ = fs::remove_file(manifest_path(dir, epoch));
                    }
                    // A referenced run file is gone: the manifest can never
                    // load again — treat it like structural corruption.
                    Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                        recovery.checkpoints_skipped += 1;
                        let _ = fs::remove_file(manifest_path(dir, epoch));
                    }
                    // A transient read error: skip but keep the manifest.
                    Err(_) => recovery.checkpoints_skipped += 1,
                }
            }
            match crate::load_from_file_with(
                &checkpoint_path(dir, epoch),
                crate::PagedOptions { cache_bytes: opts.page_cache_bytes },
            ) {
                Ok(store) => {
                    let snap = store.snapshot();
                    if snap.epoch() != epoch {
                        recovery.checkpoints_skipped += 1;
                        let _ = fs::remove_file(checkpoint_path(dir, epoch));
                        continue; // file name lies about its content
                    }
                    recovery.checkpoint_epoch = epoch;
                    base = Some(snap);
                    break;
                }
                Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
                Err(SnapshotError::Corrupt(_)) => {
                    recovery.checkpoints_skipped += 1;
                    let _ = fs::remove_file(checkpoint_path(dir, epoch));
                }
                // A transient read error: skip but keep the file — it may
                // be fine on a healthier day, we just cannot vouch for it.
                Err(_) => recovery.checkpoints_skipped += 1,
            }
        }
        tracer.end_with(cp_span, || {
            vec![
                ("epoch", recovery.checkpoint_epoch.to_string()),
                ("skipped", recovery.checkpoints_skipped.to_string()),
            ]
        });
        let mut base = base.unwrap_or_else(|| Arc::new(Snapshot::empty()));
        // Raise the run-id floor above every run file on disk, so ids
        // allocated by this lineage never collide with a file written by an
        // abandoned or newer one — which is what makes the write-if-absent
        // reuse in `write_checkpoint_file` sound.
        let floor = list_runs(dir)?.first().map_or(0, |max| max + 1);
        if floor > base.next_run_id {
            let mut raised = (*base).clone();
            raised.next_run_id = floor;
            base = Arc::new(raised);
        }
        // Checkpoints proven loadable: the one recovery validated now, plus
        // every one this store writes itself. Only these count for
        // retention decisions (pruning and segment retirement).
        let trusted_checkpoints: Vec<u64> = if recovery.checkpoint_epoch > 0 {
            vec![recovery.checkpoint_epoch]
        } else {
            Vec::new()
        };

        let wal_opts = WalOptions { fsync: opts.fsync, segment_bytes: opts.segment_bytes };
        let (mut wal, log) = uo_wal::Wal::open(&dir.join("wal"), wal_opts)?;
        recovery.truncated_bytes = log.truncated_bytes;

        let mut writer = StoreWriter::from_snapshot(base);
        writer.set_tracer(tracer.clone());
        let replay_span = tracer.start(open_span.id, "recovery", "wal_replay");
        writer.set_trace_parent(replay_span.id);
        let before = writer.merge_totals();
        for record in &log.records {
            if record.epoch <= writer.snapshot().epoch() {
                continue; // already covered by the checkpoint
            }
            replay(&mut writer, &record.payload).map_err(DurableError::Replay)?;
            let landed = writer.snapshot().epoch();
            if landed != record.epoch {
                return Err(DurableError::Replay(format!(
                    "record stamped epoch {} replayed to epoch {landed} — the log does not \
                     describe this store",
                    record.epoch
                )));
            }
            recovery.replayed_ops += 1;
        }
        let after = writer.merge_totals();
        recovery.replay_rows_sorted = after.0 - before.0;
        recovery.replay_rows_merged = after.1 - before.1;
        writer.set_trace_parent(0);
        tracer.end_with(replay_span, || {
            vec![
                ("records", log.records.len().to_string()),
                ("replayed_ops", recovery.replayed_ops.to_string()),
                ("truncated_bytes", recovery.truncated_bytes.to_string()),
            ]
        });

        let metrics = Arc::new(DurableMetrics::default());
        metrics.recovered_ops.store(recovery.replayed_ops, Ordering::Relaxed);
        wal.set_fsync_observer({
            let m = Arc::clone(&metrics);
            Arc::new(move |nanos| m.fsync_hist.record(nanos))
        });
        metrics.last_checkpoint_epoch.store(recovery.checkpoint_epoch, Ordering::Relaxed);
        let ds = DurableStore {
            dir: dir.to_path_buf(),
            opts,
            wal,
            writer,
            recovery,
            metrics,
            trusted_checkpoints,
            tracer: tracer.clone(),
            trace_parent: 0,
            _lock: lock,
        };
        ds.publish_wal_metrics();
        let epoch = ds.writer.snapshot().epoch();
        tracer.end_with(open_span, || vec![("epoch", epoch.to_string())]);
        Ok(ds)
    }

    /// The latest committed snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.writer.snapshot()
    }

    /// Mutable access to the writer, for applying updates. The caller owns
    /// the protocol: apply + commit, then [`journal`](Self::journal) the
    /// canonical serialization before publishing or acknowledging.
    pub fn writer_mut(&mut self) -> &mut StoreWriter {
        &mut self.writer
    }

    /// Journals one applied request, stamped with its post-commit epoch,
    /// and fsyncs per policy. Must be called in epoch order — exactly the
    /// order requests commit in.
    pub fn journal(&mut self, epoch: u64, payload: &[u8]) -> io::Result<()> {
        let span = self.tracer.start(self.trace_parent, "wal", "wal_append");
        let _ = self.wal.take_last_fsync_nanos();
        let t = Instant::now();
        self.wal.append(epoch, payload)?;
        self.metrics.commit_hist.record(t.elapsed().as_nanos() as u64);
        // The fsync (if the policy issued one) happened at the tail of the
        // append: reconstruct its window as a child span ending now.
        if let Some(nanos) = self.wal.take_last_fsync_nanos() {
            if let Some(start) = Instant::now().checked_sub(Duration::from_nanos(nanos)) {
                self.tracer.record(span.id, "wal", "wal_fsync", start, nanos, || {
                    vec![("epoch", epoch.to_string())]
                });
            }
        }
        let bytes = payload.len();
        self.tracer
            .end_with(span, || vec![("epoch", epoch.to_string()), ("bytes", bytes.to_string())]);
        self.publish_wal_metrics();
        Ok(())
    }

    /// Installs a span recorder on the store and its writer (see
    /// [`StoreWriter::set_tracer`]); recovery-time installation happens in
    /// [`open_traced`](DurableStore::open_traced).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        self.writer.set_tracer(tracer);
    }

    /// Sets the parent span id for the next commit's spans — the delta
    /// merge recorded by the writer and the `wal_append`/`wal_fsync` pair
    /// recorded by [`journal`](DurableStore::journal). Callers serialize
    /// writers, so setting this while holding the writer lock is race-free.
    pub fn set_trace_parent(&mut self, parent: u64) {
        self.trace_parent = parent;
        self.writer.set_trace_parent(parent);
    }

    /// Forces the log to stable storage regardless of the fsync policy
    /// (called on graceful shutdown so `every-N` / `never` lose nothing).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()?;
        self.publish_wal_metrics();
        Ok(())
    }

    /// Abandons everything since `base`: pending delta *and* any
    /// intermediate commits a cancelled or failed request performed. The
    /// next request continues from `base` as if the abandoned one never
    /// happened — which is true durably, because nothing was journaled.
    pub fn reset_to(&mut self, base: Arc<Snapshot>) {
        self.writer = StoreWriter::from_snapshot(base);
        self.writer.set_tracer(self.tracer.clone());
        self.writer.set_trace_parent(self.trace_parent);
    }

    /// Persists the current snapshot as an incremental checkpoint (new run
    /// files + manifest) and retires fully-covered log segments.
    /// Convenience for single-threaded callers (CLI `compact`); the server
    /// splits the two phases so the file writes happen outside the writer
    /// lock (see [`write_checkpoint_file`]).
    pub fn checkpoint(&mut self) -> io::Result<CheckpointReport> {
        let snap = self.writer.snapshot();
        let written = write_checkpoint_file(&self.dir, &snap)?;
        let mut report = self.note_checkpoint(snap.epoch())?;
        report.runs_written = written.runs_written;
        report.runs_reused = written.runs_reused;
        Ok(report)
    }

    /// Folds the tiered run stack into a single level — same epoch, same
    /// content — bounding read fan-in and letting the next checkpoint's
    /// run-file GC reclaim the superseded levels.
    pub fn compact(&mut self, par: uo_par::Parallelism) -> Result<(), SnapshotError> {
        let compacted = self.writer.snapshot().compact_with(par)?;
        let installed = self.writer.install_compacted(Arc::new(compacted));
        debug_assert!(installed, "no concurrent commit can interleave under &mut self");
        Ok(())
    }

    /// Records that a checkpoint at `epoch` exists on disk (written via
    /// [`write_checkpoint_file`]): prunes checkpoints beyond the retention
    /// count, garbage-collects run files no retained manifest references,
    /// and retires every log segment fully covered by the **oldest
    /// retained** checkpoint.
    pub fn note_checkpoint(&mut self, epoch: u64) -> io::Result<CheckpointReport> {
        let mut report = CheckpointReport { epoch, ..CheckpointReport::default() };
        let retain = self.opts.retain_checkpoints.max(1);
        // Retention reasons over *trusted* checkpoints only (ones this
        // store validated at open or wrote itself): an unvalidated file
        // sitting in the directory must neither count toward the retain
        // quota nor become the epoch segments are retired against — if it
        // turned out corrupt, the double-fault fallback (previous good
        // checkpoint + log) would be missing exactly the retired records.
        if !self.trusted_checkpoints.contains(&epoch) {
            self.trusted_checkpoints.push(epoch);
            self.trusted_checkpoints.sort_unstable_by(|a, b| b.cmp(a));
        }
        self.trusted_checkpoints.truncate(retain);
        let oldest_retained = *self.trusted_checkpoints.last().expect("just pushed");
        // Prune checkpoint files — manifests and legacy whole-store files —
        // strictly older than the oldest retained trusted one. (Unvalidated
        // files newer than it stay; open sweeps them if they are corrupt.)
        for old in list_checkpoints(&self.dir)? {
            if old < oldest_retained {
                let _ = fs::remove_file(checkpoint_path(&self.dir, old));
            }
        }
        for old in list_manifests(&self.dir)? {
            if old < oldest_retained {
                let _ = fs::remove_file(manifest_path(&self.dir, old));
            }
        }
        // Run-file GC: a run file is garbage once no surviving manifest
        // references it (superseded by compaction, or its manifest was
        // pruned). Skipped entirely if any manifest is unreadable — we
        // cannot prove anything unreferenced then, and open() will settle
        // the unreadable manifest's fate on the next recovery.
        let mut referenced = std::collections::HashSet::new();
        let mut every_manifest_readable = true;
        for e in list_manifests(&self.dir)? {
            match fs::read(manifest_path(&self.dir, e))
                .map_err(SnapshotError::Io)
                .and_then(|b| decode_manifest(&b))
            {
                Ok(m) => referenced.extend(m.levels.iter().map(|(id, _)| *id)),
                Err(_) => every_manifest_readable = false,
            }
        }
        if every_manifest_readable {
            for id in list_runs(&self.dir)? {
                if !referenced.contains(&id) {
                    let _ = fs::remove_file(run_path(&self.dir, id));
                }
            }
        }
        // Publish the checkpoint gauge *before* attempting retirement: the
        // checkpoint file exists and is trusted regardless of whether a
        // segment deletion below fails, and the server's checkpointer
        // gates on this gauge — a stale value would make it re-serialize
        // the whole store every interval for as long as the error lasts.
        self.metrics
            .last_checkpoint_epoch
            .store(self.trusted_checkpoints.first().copied().unwrap_or(0), Ordering::Relaxed);
        // Retire only once `retain` trusted checkpoints exist, and against
        // the oldest retained one — the fallback lineage (previous good
        // checkpoint + surviving log) always reconstructs every commit.
        let retired = if self.trusted_checkpoints.len() >= retain {
            self.wal.retire_through(oldest_retained)
        } else {
            Ok(uo_wal::RetireReport::default())
        };
        self.publish_wal_metrics();
        let retired = retired?;
        report.segments_removed = retired.segments_removed;
        report.bytes_removed = retired.bytes_removed;
        Ok(report)
    }

    /// Adopts `snap` as the initial content of a **fresh** store (empty
    /// checkpointless directory) and checkpoints it immediately, so the
    /// seed itself is durable before any update is accepted.
    ///
    /// # Panics
    /// Panics if the store is not fresh — seeding would silently shadow
    /// recovered data.
    pub fn seed(&mut self, snap: Arc<Snapshot>) -> io::Result<CheckpointReport> {
        assert!(self.is_fresh(), "DurableStore::seed on a directory that already has state");
        self.writer = StoreWriter::from_snapshot(snap);
        self.writer.set_tracer(self.tracer.clone());
        self.checkpoint()
    }

    /// True when the directory held no durable state at open: no
    /// checkpoint, no journaled record, nothing replayed.
    pub fn is_fresh(&self) -> bool {
        self.recovery.checkpoint_epoch == 0
            && self.recovery.replayed_ops == 0
            && self.wal.stats().records == 0
            && self.writer.snapshot().is_empty()
    }

    /// What the open recovered.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current log statistics.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Lock-free gauges for a serving layer (shared `Arc`).
    pub fn metrics(&self) -> Arc<DurableMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured options.
    pub fn options(&self) -> DurableOptions {
        self.opts
    }

    fn publish_wal_metrics(&self) {
        let s = self.wal.stats();
        self.metrics.wal_segments.store(s.segments, Ordering::Relaxed);
        self.metrics.wal_bytes.store(s.bytes, Ordering::Relaxed);
        self.metrics.wal_records.store(s.records, Ordering::Relaxed);
        self.metrics.synced_epoch.store(s.synced_epoch, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "uo_durable_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Test replayer: payloads are N-Triples documents; replay = load +
    /// commit. (The real replayer — canonical SPARQL Update — lives in
    /// uo_core, above this crate.)
    fn nt_replay(w: &mut StoreWriter, payload: &[u8]) -> Result<(), String> {
        let doc = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
        w.load_ntriples(doc).map_err(|e| e.to_string())?;
        w.commit_with(uo_par::Parallelism::sequential());
        Ok(())
    }

    fn apply_nt(ds: &mut DurableStore, doc: &str) {
        nt_replay(ds.writer_mut(), doc.as_bytes()).unwrap();
        let epoch = ds.snapshot().epoch();
        ds.journal(epoch, doc.as_bytes()).unwrap();
    }

    fn open(dir: &Path, opts: DurableOptions) -> DurableStore {
        DurableStore::open(dir, opts, nt_replay).expect("durable open")
    }

    #[test]
    fn fresh_open_journal_recover() {
        let dir = temp_dir("basic");
        {
            let mut ds = open(&dir, DurableOptions::default());
            assert!(ds.is_fresh());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
            assert_eq!(ds.snapshot().len(), 2);
            assert_eq!(ds.wal_stats().records, 2);
            assert_eq!(ds.wal_stats().synced_epoch, ds.snapshot().epoch());
        } // no checkpoint: everything must come back from the log alone
        let ds = open(&dir, DurableOptions::default());
        assert!(!ds.is_fresh());
        assert_eq!(ds.recovery().replayed_ops, 2);
        assert_eq!(ds.recovery().checkpoint_epoch, 0);
        assert_eq!(ds.snapshot().len(), 2);
        assert_eq!(ds.snapshot().epoch(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_bounds_replay_and_retires_segments() {
        let dir = temp_dir("checkpoint");
        // Tiny segments so every record rotates; retention 2.
        let opts = DurableOptions { segment_bytes: 1, ..DurableOptions::default() };
        {
            let mut ds = open(&dir, opts);
            for i in 0..6 {
                apply_nt(&mut ds, &format!("<http://s{i}> <http://p> <http://o{i}> .\n"));
            }
            assert!(ds.wal_stats().segments >= 6);
            let cp = ds.checkpoint().unwrap();
            assert_eq!(cp.epoch, 6);
            // First checkpoint: retirement is held back until an *older*
            // retained checkpoint exists (retain_checkpoints = 2).
            apply_nt(&mut ds, "<http://s6> <http://p> <http://o6> .\n");
            let cp2 = ds.checkpoint().unwrap();
            assert_eq!(cp2.epoch, 7);
            assert!(cp2.segments_removed > 0, "segments covered by checkpoint 6 retired");
        }
        let ds = open(&dir, opts);
        assert_eq!(ds.recovery().checkpoint_epoch, 7);
        assert_eq!(ds.recovery().replayed_ops, 0, "checkpoint covers the whole log");
        assert_eq!(ds.snapshot().len(), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_to_previous_checkpoint_when_newest_is_corrupt() {
        let dir = temp_dir("fallback");
        {
            let mut ds = open(&dir, DurableOptions::default());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            ds.checkpoint().unwrap(); // snapshot-…1
            apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
            ds.checkpoint().unwrap(); // snapshot-…2
        }
        // Vandalize the newest checkpoint manifest.
        let newest = manifest_path(&dir, 2);
        fs::write(&newest, b"UOMFgarbage").unwrap();
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.recovery().checkpoints_skipped, 1);
        assert_eq!(ds.recovery().checkpoint_epoch, 1, "fell back to the previous checkpoint");
        // Segments were retired against checkpoint 1 (the older retained
        // one), so the record for epoch 2 is still in the log and replays.
        assert_eq!(ds.recovery().replayed_ops, 1);
        assert_eq!(ds.snapshot().len(), 2);
        assert_eq!(ds.snapshot().epoch(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_tail_recovers_longest_prefix() {
        let dir = temp_dir("torn");
        {
            let mut ds = open(&dir, DurableOptions::default());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
        }
        // Cut the single log segment mid-way through the final record.
        let wal_dir = dir.join("wal");
        let seg = fs::read_dir(&wal_dir).unwrap().next().unwrap().unwrap().path();
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.recovery().replayed_ops, 1, "only the intact record replays");
        assert!(ds.recovery().truncated_bytes > 0);
        assert_eq!(ds.snapshot().len(), 1);
        assert_eq!(ds.snapshot().epoch(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_epoch_mismatch_is_detected() {
        let dir = temp_dir("mismatch");
        {
            let mut ds = open(&dir, DurableOptions::default());
            // Journal a record stamped with the wrong epoch on purpose by
            // bypassing apply_nt: the replayer will land on epoch 1.
            let doc = "<http://a> <http://p> <http://b> .\n";
            nt_replay(ds.writer_mut(), doc.as_bytes()).unwrap();
            ds.journal(99, doc.as_bytes()).unwrap();
        }
        match DurableStore::open(&dir, DurableOptions::default(), nt_replay) {
            Err(DurableError::Replay(m)) => assert!(m.contains("stamped epoch 99"), "{m}"),
            other => panic!("expected replay mismatch, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seed_checkpoints_immediately() {
        let dir = temp_dir("seed");
        {
            let mut st = crate::TripleStore::new();
            st.load_ntriples("<http://x> <http://p> <http://y> .\n").unwrap();
            st.build_with(uo_par::Parallelism::sequential());
            let mut ds = open(&dir, DurableOptions::default());
            ds.seed(st.snapshot()).unwrap();
            assert!(!ds.is_fresh());
        } // crash right after seeding: the checkpoint alone must restore it
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.snapshot().len(), 1);
        assert_eq!(ds.recovery().replayed_ops, 0);
        assert!(ds.recovery().checkpoint_epoch >= 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_to_discards_unjournaled_commits() {
        let dir = temp_dir("reset");
        let mut ds = open(&dir, DurableOptions::default());
        apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
        let base = ds.snapshot();
        // A request applies + commits but is then cancelled before its
        // journal write: reset must take the writer back to base.
        nt_replay(ds.writer_mut(), "<http://z> <http://p> <http://w> .\n".as_bytes()).unwrap();
        assert_eq!(ds.snapshot().epoch(), base.epoch() + 1);
        ds.reset_to(Arc::clone(&base));
        assert!(Arc::ptr_eq(&ds.snapshot(), &base));
        // And recovery agrees: only the journaled request survives.
        drop(ds);
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.snapshot().len(), 1);
        assert_eq!(ds.snapshot().epoch(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_track_log_and_checkpoints() {
        let dir = temp_dir("metrics");
        let mut ds = open(&dir, DurableOptions::default());
        let m = ds.metrics();
        apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
        assert_eq!(m.wal_records.load(Ordering::Relaxed), 1);
        assert!(m.wal_bytes.load(Ordering::Relaxed) > 0);
        assert_eq!(m.synced_epoch.load(Ordering::Relaxed), 1);
        assert_eq!(m.last_checkpoint_epoch.load(Ordering::Relaxed), 0);
        ds.checkpoint().unwrap();
        assert_eq!(m.last_checkpoint_epoch.load(Ordering::Relaxed), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_never_counts_unvalidated_checkpoints() {
        // The double-fault drill: a corrupt checkpoint planted between two
        // good ones must not soak up a retention slot or become the epoch
        // segments are retired against — else losing the newest good
        // checkpoint would strand commits with neither checkpoint nor log.
        let dir = temp_dir("untrusted");
        let opts = DurableOptions { segment_bytes: 1, ..DurableOptions::default() };
        {
            let mut ds = open(&dir, opts);
            for i in 0..3 {
                apply_nt(&mut ds, &format!("<http://s{i}> <http://p> <http://o{i}> .\n"));
            }
            ds.checkpoint().unwrap(); // good checkpoint at 3
            apply_nt(&mut ds, "<http://s3> <http://p> <http://o3> .\n");
            apply_nt(&mut ds, "<http://s4> <http://p> <http://o4> .\n");
        }
        // A corrupt checkpoint appears at epoch 4 (bad disk, half copy).
        fs::write(manifest_path(&dir, 4), b"UOMFgarbage").unwrap();
        {
            let mut ds = open(&dir, opts);
            assert_eq!(ds.recovery().checkpoint_epoch, 3, "good checkpoint wins");
            assert_eq!(ds.recovery().replayed_ops, 2);
            // New checkpoint at 5: retirement must reason over [5, 3] —
            // the trusted pair — not the corrupt 4, so records 4 and 5
            // stay in the log as checkpoint 3's fallback lineage.
            ds.checkpoint().unwrap();
            assert_eq!(ds.wal_stats().records, 2, "records above the trusted fallback stay");
        }
        // Double fault: the newest good checkpoint dies too.
        fs::write(manifest_path(&dir, 5), b"UOMFgarbage").unwrap();
        let ds = open(&dir, opts);
        assert_eq!(ds.recovery().checkpoint_epoch, 3);
        assert_eq!(ds.recovery().replayed_ops, 2, "fallback + log reconstructs everything");
        assert_eq!(ds.snapshot().len(), 5);
        assert_eq!(ds.snapshot().epoch(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn data_dir_is_single_process() {
        let dir = temp_dir("lock");
        let ds = open(&dir, DurableOptions::default());
        // A second open (same process, distinct file description — flock
        // semantics match a second process) must be refused.
        match DurableStore::open(&dir, DurableOptions::default(), nt_replay) {
            Err(DurableError::Locked(m)) => assert!(m.contains("in use"), "{m}"),
            other => panic!("expected Locked, got {:?}", other.map(|_| ())),
        }
        // Dropping the store releases the lock.
        drop(ds);
        let _ds = open(&dir, DurableOptions::default());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_checkpoint_temp_files_are_swept() {
        let dir = temp_dir("tmpsweep");
        {
            let mut ds = open(&dir, DurableOptions::default());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            ds.checkpoint().unwrap();
        }
        // A crash mid-checkpoint leaves temp files behind: a manifest temp,
        // a run-file temp, and a legacy snapshot temp.
        let orphans = [
            dir.join("manifest-00000000000000000009.uomf.tmp"),
            dir.join("runs").join("run-00000000000000000009.uorun.tmp"),
            dir.join("snapshot-00000000000000000009.uost.tmp"),
        ];
        for o in &orphans {
            fs::write(o, b"half-written checkpoint").unwrap();
        }
        let ds = open(&dir, DurableOptions::default());
        for o in &orphans {
            assert!(!o.exists(), "open must sweep temp files: {}", o.display());
        }
        assert_eq!(ds.snapshot().len(), 1, "real state untouched");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_checkpoint_reuses_existing_run_files() {
        let dir = temp_dir("incremental");
        let mut ds = open(&dir, DurableOptions::default());
        apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
        let cp1 = ds.checkpoint().unwrap();
        assert_eq!(cp1.runs_written, 1, "first checkpoint persists the only level");
        assert_eq!(cp1.runs_reused, 0);
        apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
        apply_nt(&mut ds, "<http://a> <http://p> <http://d> .\n");
        let cp2 = ds.checkpoint().unwrap();
        assert_eq!(cp2.runs_written, 2, "only the two new levels are written");
        assert_eq!(cp2.runs_reused, 1, "the first level's run file is reused by reference");
        // And the incremental lineage recovers to the same content.
        drop(ds);
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.recovery().checkpoint_epoch, 3);
        assert_eq!(ds.recovery().replayed_ops, 0);
        assert_eq!(ds.snapshot().len(), 3);
        assert_eq!(ds.snapshot().level_count(), 3);
        assert!(ds.snapshot().tier_stats().disk_rows > 0, "recovered levels are disk-backed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_plus_checkpoints_garbage_collect_run_files() {
        let dir = temp_dir("rungc");
        let mut ds = open(&dir, DurableOptions::default());
        for i in 0..4 {
            apply_nt(&mut ds, &format!("<http://s{i}> <http://p> <http://o{i}> .\n"));
        }
        ds.checkpoint().unwrap();
        assert_eq!(list_runs(&dir).unwrap().len(), 4);
        // Fold the stack; the compacted level replaces all four runs.
        ds.compact(uo_par::Parallelism::sequential()).unwrap();
        assert_eq!(ds.snapshot().level_count(), 1);
        apply_nt(&mut ds, "<http://s4> <http://p> <http://o4> .\n");
        ds.checkpoint().unwrap();
        // Retention still holds the pre-compaction manifest, so its four
        // runs survive this checkpoint...
        assert_eq!(list_runs(&dir).unwrap().len(), 6);
        apply_nt(&mut ds, "<http://s5> <http://p> <http://o5> .\n");
        ds.checkpoint().unwrap();
        // ... but once it is pruned, only the runs of the two surviving
        // manifests remain: {compacted, s4-level} and {compacted, s4, s5}.
        let left = list_runs(&dir).unwrap();
        assert_eq!(left.len(), 3, "superseded run files reclaimed, got {left:?}");
        drop(ds);
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.snapshot().len(), 6);
        assert_eq!(ds.recovery().replayed_ops, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_whole_store_checkpoint_still_recovers() {
        let dir = temp_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        // An old store directory: a whole-store checkpoint file, no
        // manifests, no log.
        let mut st = crate::TripleStore::new();
        st.load_ntriples("<http://x> <http://p> <http://y> .\n").unwrap();
        st.build_with(uo_par::Parallelism::sequential());
        let snap = st.snapshot();
        crate::save_to_file(&snap, &checkpoint_path(&dir, snap.epoch())).unwrap();
        let mut ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.recovery().checkpoint_epoch, snap.epoch());
        assert_eq!(ds.snapshot().len(), 1);
        // The next checkpoint moves the directory to the incremental
        // format; the legacy file persists as the retention fallback.
        apply_nt(&mut ds, "<http://x> <http://p> <http://z> .\n");
        let cp = ds.checkpoint().unwrap();
        assert!(cp.runs_written >= 1);
        assert!(manifest_path(&dir, cp.epoch).exists());
        drop(ds);
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.snapshot().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_degrades_to_empty_store() {
        let dir = temp_dir("empty");
        let ds = open(&dir, DurableOptions::default());
        assert!(ds.is_fresh());
        assert!(ds.snapshot().is_empty());
        assert_eq!(ds.snapshot().epoch(), 0);
        fs::remove_dir_all(&dir).ok();
    }
}
