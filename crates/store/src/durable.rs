//! The [`DurableStore`]: crash-safe persistence under the MVCC store.
//!
//! A durable store owns one **data directory** with a simple layout:
//!
//! ```text
//! <data-dir>/
//!   snapshot-<epoch>.uost   checkpoints (v2 snapshot files, atomic writes)
//!   wal/wal-<epoch>.log     the segmented write-ahead log (uo_wal)
//! ```
//!
//! and enforces the log-before-visibility discipline: an update is applied
//! to the in-memory [`StoreWriter`] (which has no externally visible
//! effect), **journaled + fsynced** per the configured [`FsyncPolicy`], and
//! only then published to readers / acknowledged to the client. A crash at
//! any point therefore loses only updates that were never acknowledged;
//! under `fsync=always` an acknowledged update is *never* lost.
//!
//! [`DurableStore::open`] recovers: it loads the **newest valid
//! checkpoint** (tolerating a corrupt or missing newest by falling back to
//! the previous one, and to the empty store when the directory is fresh),
//! then **replays the log tail** — every record with an epoch above the
//! checkpoint's — through a caller-supplied replay function, verifying
//! after each record that the writer landed on exactly the epoch the
//! record was stamped with. Replay goes through the ordinary
//! `StoreWriter::commit` machinery, so it takes the O(N + K) merge path,
//! never a re-sort; [`RecoveryReport`] carries the accumulated
//! [`CommitStats`](crate::CommitStats) totals as proof.
//!
//! The replay function is injected (rather than baked in) because payloads
//! are canonical SPARQL Update serializations: parsing and re-running them
//! needs the query engine, which lives *above* this crate. `uo_core`
//! provides the standard replayer and the `run_update`-shaped entry points.
//!
//! **Checkpoints** bound recovery time and log growth: persisting the
//! current snapshot lets every log segment whose records are all at or
//! below a *retained* checkpoint be deleted. Two checkpoints are kept (the
//! newest and the one before it); segments are retired against the
//! **older** of the two, so even if the newest checkpoint file were lost,
//! the previous checkpoint plus the surviving log still reconstructs every
//! acknowledged commit.

use crate::writer::StoreWriter;
use crate::{save_to_file, Snapshot, SnapshotError};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
pub use uo_wal::{FsyncPolicy, WalOptions, WalStats};

/// Configuration of a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// When journal appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Log segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// How many checkpoint snapshots to retain (minimum 1). With 2 (the
    /// default), log segments are retired against the *older* retained
    /// checkpoint, keeping a full fallback lineage on disk.
    pub retain_checkpoints: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { fsync: FsyncPolicy::Always, segment_bytes: 8 << 20, retain_checkpoints: 2 }
    }
}

/// An error while opening or operating a durable store.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid data that recovery cannot repair.
    Corrupt(String),
    /// A journaled record failed to replay (unparsable payload, or the
    /// replay landed on a different epoch than the record was stamped
    /// with — both mean the log and the store disagree).
    Replay(String),
    /// Another process holds the data directory's advisory lock.
    Locked(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store I/O error: {e}"),
            DurableError::Corrupt(m) => write!(f, "corrupt durable store: {m}"),
            DurableError::Replay(m) => write!(f, "wal replay failed: {m}"),
            DurableError::Locked(m) => write!(f, "durable store locked: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<uo_wal::WalError> for DurableError {
    fn from(e: uo_wal::WalError) -> Self {
        match e {
            uo_wal::WalError::Io(e) => DurableError::Io(e),
            uo_wal::WalError::Corrupt(m) => DurableError::Corrupt(m),
        }
    }
}

/// What [`DurableStore::open`] reconstructed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint the recovery started from (0 = none).
    pub checkpoint_epoch: u64,
    /// Checkpoint files that failed to load and were skipped.
    pub checkpoints_skipped: usize,
    /// Log records replayed on top of the checkpoint.
    pub replayed_ops: usize,
    /// Bytes cut from the log's torn tail (0 = clean shutdown).
    pub truncated_bytes: u64,
    /// Delta rows sorted across every replayed commit — bounded by the
    /// replayed deltas, proof that replay merged instead of re-sorting.
    pub replay_rows_sorted: usize,
    /// Base rows merged across every replayed commit.
    pub replay_rows_merged: usize,
}

/// Live gauges a serving layer can read without locking the store: every
/// mutating operation on the [`DurableStore`] refreshes them.
#[derive(Debug, Default)]
pub struct DurableMetrics {
    /// Log segment files.
    pub wal_segments: AtomicUsize,
    /// Total log bytes on disk.
    pub wal_bytes: AtomicU64,
    /// Records currently in the log.
    pub wal_records: AtomicU64,
    /// Highest epoch guaranteed fsynced.
    pub synced_epoch: AtomicU64,
    /// Epoch of the newest checkpoint.
    pub last_checkpoint_epoch: AtomicU64,
    /// Records replayed by the most recent open.
    pub recovered_ops: AtomicUsize,
}

/// What one checkpoint did.
#[derive(Debug, Clone, Default)]
pub struct CheckpointReport {
    /// Epoch the checkpoint persisted.
    pub epoch: u64,
    /// Log segments retired.
    pub segments_removed: usize,
    /// Log bytes freed.
    pub bytes_removed: u64,
}

/// Crash-safe wrapper around a [`StoreWriter`]. See the module docs.
pub struct DurableStore {
    dir: PathBuf,
    opts: DurableOptions,
    wal: uo_wal::Wal,
    writer: StoreWriter,
    recovery: RecoveryReport,
    metrics: Arc<DurableMetrics>,
    /// Checkpoint epochs proven loadable (validated by this open, or
    /// written by this store), newest first. Retention — pruning old
    /// checkpoint files and retiring log segments — only ever counts
    /// these: an on-disk checkpoint that was never validated must not
    /// cost the log segments the real fallback needs.
    trusted_checkpoints: Vec<u64>,
    /// Advisory `flock` on `<dir>/LOCK`, held for the store's lifetime so
    /// a second process (another server, an offline `compact`) cannot
    /// interleave writes into the same log. The OS releases it on any
    /// exit, including `kill -9` — no stale-lock recovery needed.
    _lock: fs::File,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("epoch", &self.writer.snapshot().epoch())
            .field("wal", &self.wal.stats())
            .finish()
    }
}

/// The file name of a checkpoint at `epoch`, inside the data dir.
pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:020}.uost"))
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".uost")?.parse().ok()
}

/// Epochs of all checkpoint files in `dir`, newest first.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<u64>> {
    let mut epochs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(e) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            epochs.push(e);
        }
    }
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(epochs)
}

/// Atomically writes `snap` as a checkpoint file in `dir` and returns its
/// path. Safe to call without any store lock — a snapshot is immutable —
/// which is how the server's background checkpointer avoids stalling
/// writers during the (potentially large) file write.
pub fn write_checkpoint_file(dir: &Path, snap: &Snapshot) -> io::Result<PathBuf> {
    let path = checkpoint_path(dir, snap.epoch());
    save_to_file(snap, &path)?;
    Ok(path)
}

impl DurableStore {
    /// Opens (or creates) the durable store in `dir`, recovering to the
    /// last durable state: newest loadable checkpoint + full log-tail
    /// replay. `replay` applies one journaled payload to the writer **and
    /// commits it** (typically: parse the canonical update serialization,
    /// run it); after each record the writer must sit at exactly the
    /// record's stamped epoch, or the open fails with
    /// [`DurableError::Replay`].
    pub fn open(
        dir: &Path,
        opts: DurableOptions,
        mut replay: impl FnMut(&mut StoreWriter, &[u8]) -> Result<(), String>,
    ) -> Result<DurableStore, DurableError> {
        fs::create_dir_all(dir)?;
        // One process per data dir: two writers interleaving appends into
        // the same active segment would corrupt the log even though each
        // follows the protocol. Advisory flock, auto-released on death.
        let lock = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join("LOCK"))?;
        if let Err(e) = lock.try_lock() {
            return Err(DurableError::Locked(format!(
                "{} is in use by another process ({e})",
                dir.display()
            )));
        }
        // Sweep checkpoint temp files orphaned by a crash mid-write (the
        // atomic rename never promoted them); each can be full-store-sized,
        // and a crash loop would otherwise accumulate them indefinitely.
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(".uost.tmp")) {
                let _ = fs::remove_file(entry.path());
            }
        }
        let mut recovery = RecoveryReport::default();

        // Newest valid checkpoint wins; unloadable ones are skipped (the
        // atomic writer makes them near-impossible, but a half-copied
        // backup or a bad disk should degrade, not brick the store) and
        // structurally-corrupt ones deleted — they must never be counted
        // as retention fallbacks, or a later checkpoint would retire the
        // log segments the *real* fallback still needs.
        let mut base: Option<Arc<Snapshot>> = None;
        for epoch in list_checkpoints(dir)? {
            match crate::load_from_file(&checkpoint_path(dir, epoch)) {
                Ok(store) => {
                    let snap = store.snapshot();
                    if snap.epoch() != epoch {
                        recovery.checkpoints_skipped += 1;
                        let _ = fs::remove_file(checkpoint_path(dir, epoch));
                        continue; // file name lies about its content
                    }
                    recovery.checkpoint_epoch = epoch;
                    base = Some(snap);
                    break;
                }
                Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
                Err(SnapshotError::Corrupt(_)) => {
                    recovery.checkpoints_skipped += 1;
                    let _ = fs::remove_file(checkpoint_path(dir, epoch));
                }
                // A transient read error: skip but keep the file — it may
                // be fine on a healthier day, we just cannot vouch for it.
                Err(_) => recovery.checkpoints_skipped += 1,
            }
        }
        let base = base.unwrap_or_else(|| Arc::new(Snapshot::empty()));
        // Checkpoints proven loadable: the one recovery validated now, plus
        // every one this store writes itself. Only these count for
        // retention decisions (pruning and segment retirement).
        let trusted_checkpoints: Vec<u64> = if recovery.checkpoint_epoch > 0 {
            vec![recovery.checkpoint_epoch]
        } else {
            Vec::new()
        };

        let wal_opts = WalOptions { fsync: opts.fsync, segment_bytes: opts.segment_bytes };
        let (wal, log) = uo_wal::Wal::open(&dir.join("wal"), wal_opts)?;
        recovery.truncated_bytes = log.truncated_bytes;

        let mut writer = StoreWriter::from_snapshot(base);
        let before = writer.merge_totals();
        for record in &log.records {
            if record.epoch <= writer.snapshot().epoch() {
                continue; // already covered by the checkpoint
            }
            replay(&mut writer, &record.payload).map_err(DurableError::Replay)?;
            let landed = writer.snapshot().epoch();
            if landed != record.epoch {
                return Err(DurableError::Replay(format!(
                    "record stamped epoch {} replayed to epoch {landed} — the log does not \
                     describe this store",
                    record.epoch
                )));
            }
            recovery.replayed_ops += 1;
        }
        let after = writer.merge_totals();
        recovery.replay_rows_sorted = after.0 - before.0;
        recovery.replay_rows_merged = after.1 - before.1;

        let metrics = Arc::new(DurableMetrics::default());
        metrics.recovered_ops.store(recovery.replayed_ops, Ordering::Relaxed);
        metrics.last_checkpoint_epoch.store(recovery.checkpoint_epoch, Ordering::Relaxed);
        let ds = DurableStore {
            dir: dir.to_path_buf(),
            opts,
            wal,
            writer,
            recovery,
            metrics,
            trusted_checkpoints,
            _lock: lock,
        };
        ds.publish_wal_metrics();
        Ok(ds)
    }

    /// The latest committed snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.writer.snapshot()
    }

    /// Mutable access to the writer, for applying updates. The caller owns
    /// the protocol: apply + commit, then [`journal`](Self::journal) the
    /// canonical serialization before publishing or acknowledging.
    pub fn writer_mut(&mut self) -> &mut StoreWriter {
        &mut self.writer
    }

    /// Journals one applied request, stamped with its post-commit epoch,
    /// and fsyncs per policy. Must be called in epoch order — exactly the
    /// order requests commit in.
    pub fn journal(&mut self, epoch: u64, payload: &[u8]) -> io::Result<()> {
        self.wal.append(epoch, payload)?;
        self.publish_wal_metrics();
        Ok(())
    }

    /// Forces the log to stable storage regardless of the fsync policy
    /// (called on graceful shutdown so `every-N` / `never` lose nothing).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()?;
        self.publish_wal_metrics();
        Ok(())
    }

    /// Abandons everything since `base`: pending delta *and* any
    /// intermediate commits a cancelled or failed request performed. The
    /// next request continues from `base` as if the abandoned one never
    /// happened — which is true durably, because nothing was journaled.
    pub fn reset_to(&mut self, base: Arc<Snapshot>) {
        self.writer = StoreWriter::from_snapshot(base);
    }

    /// Persists the current snapshot as a checkpoint and retires
    /// fully-covered log segments. Convenience for single-threaded callers
    /// (CLI `compact`); the server splits the two phases so the file write
    /// happens outside the writer lock (see [`write_checkpoint_file`]).
    pub fn checkpoint(&mut self) -> io::Result<CheckpointReport> {
        let snap = self.writer.snapshot();
        write_checkpoint_file(&self.dir, &snap)?;
        self.note_checkpoint(snap.epoch())
    }

    /// Records that a checkpoint file at `epoch` exists (written via
    /// [`write_checkpoint_file`]): prunes old checkpoints beyond the
    /// retention count and retires every log segment fully covered by the
    /// **oldest retained** checkpoint.
    pub fn note_checkpoint(&mut self, epoch: u64) -> io::Result<CheckpointReport> {
        let mut report = CheckpointReport { epoch, ..CheckpointReport::default() };
        let retain = self.opts.retain_checkpoints.max(1);
        // Retention reasons over *trusted* checkpoints only (ones this
        // store validated at open or wrote itself): an unvalidated file
        // sitting in the directory must neither count toward the retain
        // quota nor become the epoch segments are retired against — if it
        // turned out corrupt, the double-fault fallback (previous good
        // checkpoint + log) would be missing exactly the retired records.
        if !self.trusted_checkpoints.contains(&epoch) {
            self.trusted_checkpoints.push(epoch);
            self.trusted_checkpoints.sort_unstable_by(|a, b| b.cmp(a));
        }
        self.trusted_checkpoints.truncate(retain);
        let oldest_retained = *self.trusted_checkpoints.last().expect("just pushed");
        // Prune checkpoint files strictly older than the oldest retained
        // trusted one. (Unvalidated files newer than it stay; open sweeps
        // them if they are corrupt.)
        for old in list_checkpoints(&self.dir)? {
            if old < oldest_retained {
                let _ = fs::remove_file(checkpoint_path(&self.dir, old));
            }
        }
        // Publish the checkpoint gauge *before* attempting retirement: the
        // checkpoint file exists and is trusted regardless of whether a
        // segment deletion below fails, and the server's checkpointer
        // gates on this gauge — a stale value would make it re-serialize
        // the whole store every interval for as long as the error lasts.
        self.metrics
            .last_checkpoint_epoch
            .store(self.trusted_checkpoints.first().copied().unwrap_or(0), Ordering::Relaxed);
        // Retire only once `retain` trusted checkpoints exist, and against
        // the oldest retained one — the fallback lineage (previous good
        // checkpoint + surviving log) always reconstructs every commit.
        let retired = if self.trusted_checkpoints.len() >= retain {
            self.wal.retire_through(oldest_retained)
        } else {
            Ok(uo_wal::RetireReport::default())
        };
        self.publish_wal_metrics();
        let retired = retired?;
        report.segments_removed = retired.segments_removed;
        report.bytes_removed = retired.bytes_removed;
        Ok(report)
    }

    /// Adopts `snap` as the initial content of a **fresh** store (empty
    /// checkpointless directory) and checkpoints it immediately, so the
    /// seed itself is durable before any update is accepted.
    ///
    /// # Panics
    /// Panics if the store is not fresh — seeding would silently shadow
    /// recovered data.
    pub fn seed(&mut self, snap: Arc<Snapshot>) -> io::Result<CheckpointReport> {
        assert!(self.is_fresh(), "DurableStore::seed on a directory that already has state");
        self.writer = StoreWriter::from_snapshot(snap);
        self.checkpoint()
    }

    /// True when the directory held no durable state at open: no
    /// checkpoint, no journaled record, nothing replayed.
    pub fn is_fresh(&self) -> bool {
        self.recovery.checkpoint_epoch == 0
            && self.recovery.replayed_ops == 0
            && self.wal.stats().records == 0
            && self.writer.snapshot().is_empty()
    }

    /// What the open recovered.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current log statistics.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Lock-free gauges for a serving layer (shared `Arc`).
    pub fn metrics(&self) -> Arc<DurableMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured options.
    pub fn options(&self) -> DurableOptions {
        self.opts
    }

    fn publish_wal_metrics(&self) {
        let s = self.wal.stats();
        self.metrics.wal_segments.store(s.segments, Ordering::Relaxed);
        self.metrics.wal_bytes.store(s.bytes, Ordering::Relaxed);
        self.metrics.wal_records.store(s.records, Ordering::Relaxed);
        self.metrics.synced_epoch.store(s.synced_epoch, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "uo_durable_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Test replayer: payloads are N-Triples documents; replay = load +
    /// commit. (The real replayer — canonical SPARQL Update — lives in
    /// uo_core, above this crate.)
    fn nt_replay(w: &mut StoreWriter, payload: &[u8]) -> Result<(), String> {
        let doc = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
        w.load_ntriples(doc).map_err(|e| e.to_string())?;
        w.commit_with(uo_par::Parallelism::sequential());
        Ok(())
    }

    fn apply_nt(ds: &mut DurableStore, doc: &str) {
        nt_replay(ds.writer_mut(), doc.as_bytes()).unwrap();
        let epoch = ds.snapshot().epoch();
        ds.journal(epoch, doc.as_bytes()).unwrap();
    }

    fn open(dir: &Path, opts: DurableOptions) -> DurableStore {
        DurableStore::open(dir, opts, nt_replay).expect("durable open")
    }

    #[test]
    fn fresh_open_journal_recover() {
        let dir = temp_dir("basic");
        {
            let mut ds = open(&dir, DurableOptions::default());
            assert!(ds.is_fresh());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
            assert_eq!(ds.snapshot().len(), 2);
            assert_eq!(ds.wal_stats().records, 2);
            assert_eq!(ds.wal_stats().synced_epoch, ds.snapshot().epoch());
        } // no checkpoint: everything must come back from the log alone
        let ds = open(&dir, DurableOptions::default());
        assert!(!ds.is_fresh());
        assert_eq!(ds.recovery().replayed_ops, 2);
        assert_eq!(ds.recovery().checkpoint_epoch, 0);
        assert_eq!(ds.snapshot().len(), 2);
        assert_eq!(ds.snapshot().epoch(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_bounds_replay_and_retires_segments() {
        let dir = temp_dir("checkpoint");
        // Tiny segments so every record rotates; retention 2.
        let opts = DurableOptions { segment_bytes: 1, ..DurableOptions::default() };
        {
            let mut ds = open(&dir, opts);
            for i in 0..6 {
                apply_nt(&mut ds, &format!("<http://s{i}> <http://p> <http://o{i}> .\n"));
            }
            assert!(ds.wal_stats().segments >= 6);
            let cp = ds.checkpoint().unwrap();
            assert_eq!(cp.epoch, 6);
            // First checkpoint: retirement is held back until an *older*
            // retained checkpoint exists (retain_checkpoints = 2).
            apply_nt(&mut ds, "<http://s6> <http://p> <http://o6> .\n");
            let cp2 = ds.checkpoint().unwrap();
            assert_eq!(cp2.epoch, 7);
            assert!(cp2.segments_removed > 0, "segments covered by checkpoint 6 retired");
        }
        let ds = open(&dir, opts);
        assert_eq!(ds.recovery().checkpoint_epoch, 7);
        assert_eq!(ds.recovery().replayed_ops, 0, "checkpoint covers the whole log");
        assert_eq!(ds.snapshot().len(), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_to_previous_checkpoint_when_newest_is_corrupt() {
        let dir = temp_dir("fallback");
        {
            let mut ds = open(&dir, DurableOptions::default());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            ds.checkpoint().unwrap(); // snapshot-…1
            apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
            ds.checkpoint().unwrap(); // snapshot-…2
        }
        // Vandalize the newest checkpoint.
        let newest = checkpoint_path(&dir, 2);
        fs::write(&newest, b"UOSTgarbage").unwrap();
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.recovery().checkpoints_skipped, 1);
        assert_eq!(ds.recovery().checkpoint_epoch, 1, "fell back to the previous checkpoint");
        // Segments were retired against checkpoint 1 (the older retained
        // one), so the record for epoch 2 is still in the log and replays.
        assert_eq!(ds.recovery().replayed_ops, 1);
        assert_eq!(ds.snapshot().len(), 2);
        assert_eq!(ds.snapshot().epoch(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_tail_recovers_longest_prefix() {
        let dir = temp_dir("torn");
        {
            let mut ds = open(&dir, DurableOptions::default());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            apply_nt(&mut ds, "<http://a> <http://p> <http://c> .\n");
        }
        // Cut the single log segment mid-way through the final record.
        let wal_dir = dir.join("wal");
        let seg = fs::read_dir(&wal_dir).unwrap().next().unwrap().unwrap().path();
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.recovery().replayed_ops, 1, "only the intact record replays");
        assert!(ds.recovery().truncated_bytes > 0);
        assert_eq!(ds.snapshot().len(), 1);
        assert_eq!(ds.snapshot().epoch(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_epoch_mismatch_is_detected() {
        let dir = temp_dir("mismatch");
        {
            let mut ds = open(&dir, DurableOptions::default());
            // Journal a record stamped with the wrong epoch on purpose by
            // bypassing apply_nt: the replayer will land on epoch 1.
            let doc = "<http://a> <http://p> <http://b> .\n";
            nt_replay(ds.writer_mut(), doc.as_bytes()).unwrap();
            ds.journal(99, doc.as_bytes()).unwrap();
        }
        match DurableStore::open(&dir, DurableOptions::default(), nt_replay) {
            Err(DurableError::Replay(m)) => assert!(m.contains("stamped epoch 99"), "{m}"),
            other => panic!("expected replay mismatch, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seed_checkpoints_immediately() {
        let dir = temp_dir("seed");
        {
            let mut st = crate::TripleStore::new();
            st.load_ntriples("<http://x> <http://p> <http://y> .\n").unwrap();
            st.build_with(uo_par::Parallelism::sequential());
            let mut ds = open(&dir, DurableOptions::default());
            ds.seed(st.snapshot()).unwrap();
            assert!(!ds.is_fresh());
        } // crash right after seeding: the checkpoint alone must restore it
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.snapshot().len(), 1);
        assert_eq!(ds.recovery().replayed_ops, 0);
        assert!(ds.recovery().checkpoint_epoch >= 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_to_discards_unjournaled_commits() {
        let dir = temp_dir("reset");
        let mut ds = open(&dir, DurableOptions::default());
        apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
        let base = ds.snapshot();
        // A request applies + commits but is then cancelled before its
        // journal write: reset must take the writer back to base.
        nt_replay(ds.writer_mut(), "<http://z> <http://p> <http://w> .\n".as_bytes()).unwrap();
        assert_eq!(ds.snapshot().epoch(), base.epoch() + 1);
        ds.reset_to(Arc::clone(&base));
        assert!(Arc::ptr_eq(&ds.snapshot(), &base));
        // And recovery agrees: only the journaled request survives.
        drop(ds);
        let ds = open(&dir, DurableOptions::default());
        assert_eq!(ds.snapshot().len(), 1);
        assert_eq!(ds.snapshot().epoch(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_track_log_and_checkpoints() {
        let dir = temp_dir("metrics");
        let mut ds = open(&dir, DurableOptions::default());
        let m = ds.metrics();
        apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
        assert_eq!(m.wal_records.load(Ordering::Relaxed), 1);
        assert!(m.wal_bytes.load(Ordering::Relaxed) > 0);
        assert_eq!(m.synced_epoch.load(Ordering::Relaxed), 1);
        assert_eq!(m.last_checkpoint_epoch.load(Ordering::Relaxed), 0);
        ds.checkpoint().unwrap();
        assert_eq!(m.last_checkpoint_epoch.load(Ordering::Relaxed), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_never_counts_unvalidated_checkpoints() {
        // The double-fault drill: a corrupt checkpoint planted between two
        // good ones must not soak up a retention slot or become the epoch
        // segments are retired against — else losing the newest good
        // checkpoint would strand commits with neither checkpoint nor log.
        let dir = temp_dir("untrusted");
        let opts = DurableOptions { segment_bytes: 1, ..DurableOptions::default() };
        {
            let mut ds = open(&dir, opts);
            for i in 0..3 {
                apply_nt(&mut ds, &format!("<http://s{i}> <http://p> <http://o{i}> .\n"));
            }
            ds.checkpoint().unwrap(); // good checkpoint at 3
            apply_nt(&mut ds, "<http://s3> <http://p> <http://o3> .\n");
            apply_nt(&mut ds, "<http://s4> <http://p> <http://o4> .\n");
        }
        // A corrupt checkpoint appears at epoch 4 (bad disk, half copy).
        fs::write(checkpoint_path(&dir, 4), b"UOSTgarbage").unwrap();
        {
            let mut ds = open(&dir, opts);
            assert_eq!(ds.recovery().checkpoint_epoch, 3, "good checkpoint wins");
            assert_eq!(ds.recovery().replayed_ops, 2);
            // New checkpoint at 5: retirement must reason over [5, 3] —
            // the trusted pair — not the corrupt 4, so records 4 and 5
            // stay in the log as checkpoint 3's fallback lineage.
            ds.checkpoint().unwrap();
            assert_eq!(ds.wal_stats().records, 2, "records above the trusted fallback stay");
        }
        // Double fault: the newest good checkpoint dies too.
        fs::write(checkpoint_path(&dir, 5), b"UOSTgarbage").unwrap();
        let ds = open(&dir, opts);
        assert_eq!(ds.recovery().checkpoint_epoch, 3);
        assert_eq!(ds.recovery().replayed_ops, 2, "fallback + log reconstructs everything");
        assert_eq!(ds.snapshot().len(), 5);
        assert_eq!(ds.snapshot().epoch(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn data_dir_is_single_process() {
        let dir = temp_dir("lock");
        let ds = open(&dir, DurableOptions::default());
        // A second open (same process, distinct file description — flock
        // semantics match a second process) must be refused.
        match DurableStore::open(&dir, DurableOptions::default(), nt_replay) {
            Err(DurableError::Locked(m)) => assert!(m.contains("in use"), "{m}"),
            other => panic!("expected Locked, got {:?}", other.map(|_| ())),
        }
        // Dropping the store releases the lock.
        drop(ds);
        let _ds = open(&dir, DurableOptions::default());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_checkpoint_temp_files_are_swept() {
        let dir = temp_dir("tmpsweep");
        {
            let mut ds = open(&dir, DurableOptions::default());
            apply_nt(&mut ds, "<http://a> <http://p> <http://b> .\n");
            ds.checkpoint().unwrap();
        }
        // A crash mid-checkpoint leaves a .uost.tmp behind.
        let orphan = dir.join("snapshot-00000000000000000009.uost.tmp");
        fs::write(&orphan, b"half-written checkpoint").unwrap();
        let ds = open(&dir, DurableOptions::default());
        assert!(!orphan.exists(), "open must sweep checkpoint temp files");
        assert_eq!(ds.snapshot().len(), 1, "real state untouched");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_degrades_to_empty_store() {
        let dir = temp_dir("empty");
        let ds = open(&dir, DurableOptions::default());
        assert!(ds.is_fresh());
        assert!(ds.snapshot().is_empty());
        assert_eq!(ds.snapshot().epoch(), 0);
        fs::remove_dir_all(&dir).ok();
    }
}
