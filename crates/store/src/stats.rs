//! Dataset statistics used by the cost models and by Table 2 of the paper.
//!
//! Besides the headline counts (triples / entities / predicates / literals),
//! the store records per-predicate histograms used by the WCO join cost
//! formula of Section 5.1.2: `average_size(v, p)` — the average number of
//! edges labelled `p` incident to a subject (out-degree) or object
//! (in-degree).

use uo_rdf::{Dictionary, FxHashMap, Id};

/// Per-predicate occurrence statistics.
#[derive(Debug, Default, Clone)]
pub struct PredicateStats {
    /// Total triples with this predicate.
    pub count: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

impl PredicateStats {
    /// Average out-degree: `count / distinct_subjects` (≥ 1 when count > 0).
    pub fn avg_out_degree(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            self.count as f64 / self.distinct_subjects as f64
        }
    }

    /// Average in-degree: `count / distinct_objects` (≥ 1 when count > 0).
    pub fn avg_in_degree(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            self.count as f64 / self.distinct_objects as f64
        }
    }
}

/// Whole-dataset statistics (Table 2 columns + cost model inputs).
#[derive(Debug, Default, Clone)]
pub struct DatasetStats {
    /// Total number of distinct triples.
    pub triples: usize,
    /// Distinct IRIs/blank nodes appearing as subject or object.
    pub entities: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Distinct literal terms appearing as object.
    pub literals: usize,
    pub(crate) per_predicate: FxHashMap<Id, PredicateStats>,
}

impl DatasetStats {
    /// Computes statistics over a sorted, deduplicated SPO index.
    pub fn compute(dict: &Dictionary, spo: &[[Id; 3]]) -> Self {
        let mut per_predicate: FxHashMap<Id, PredicateStats> = FxHashMap::default();
        // (predicate, subject) pairs arrive sorted in SPO order, so distinct
        // subjects per predicate can be counted with a set of pairs; objects
        // need a set as well.
        let mut ps_seen: uo_rdf::FxHashSet<(Id, Id)> = uo_rdf::FxHashSet::default();
        let mut po_seen: uo_rdf::FxHashSet<(Id, Id)> = uo_rdf::FxHashSet::default();
        let mut nodes: uo_rdf::FxHashSet<Id> = uo_rdf::FxHashSet::default();
        let mut literal_objects: uo_rdf::FxHashSet<Id> = uo_rdf::FxHashSet::default();

        for &[s, p, o] in spo {
            let entry = per_predicate.entry(p).or_default();
            entry.count += 1;
            if ps_seen.insert((p, s)) {
                entry.distinct_subjects += 1;
            }
            if po_seen.insert((p, o)) {
                entry.distinct_objects += 1;
            }
            nodes.insert(s);
            let obj_is_literal = dict.decode(o).map(|t| t.is_literal()).unwrap_or(false);
            if obj_is_literal {
                literal_objects.insert(o);
            } else {
                nodes.insert(o);
            }
        }

        DatasetStats {
            triples: spo.len(),
            entities: nodes.len(),
            predicates: per_predicate.len(),
            literals: literal_objects.len(),
            per_predicate,
        }
    }

    /// Exactly updates the statistics for a normalized commit delta against
    /// `base` (the pre-commit snapshot): `adds` are rows not live in
    /// `base`, `dels` are rows live in `base`, and the two are disjoint.
    ///
    /// Every count is maintained by occurrence transitions: a per-predicate
    /// distinct-subject count changes only when the number of `(s, p, ·)`
    /// rows crosses zero, which a binary-searched `count_pattern` on the
    /// pre-commit snapshot detects in O(log n) per distinct delta pair.
    /// The result is bit-identical to a full
    /// [`compute`](DatasetStats::compute) over the post-commit dataset —
    /// the MVCC property tests assert exactly that — at O(K · log N) cost
    /// for a K-row delta instead of O(N).
    pub(crate) fn apply_delta(
        &mut self,
        base: &crate::Snapshot,
        dict: &Dictionary,
        adds: &[[Id; 3]],
        dels: &[[Id; 3]],
    ) {
        self.triples = self.triples + adds.len() - dels.len();

        let mut count_delta: FxHashMap<Id, i64> = FxHashMap::default();
        let mut ps_delta: FxHashMap<(Id, Id), i64> = FxHashMap::default();
        let mut po_delta: FxHashMap<(Id, Id), i64> = FxHashMap::default();
        // Per term: (delta of subject occurrences, delta of object occurrences).
        let mut term_delta: FxHashMap<Id, (i64, i64)> = FxHashMap::default();
        for &[s, p, o] in adds {
            *count_delta.entry(p).or_default() += 1;
            *ps_delta.entry((p, s)).or_default() += 1;
            *po_delta.entry((p, o)).or_default() += 1;
            term_delta.entry(s).or_default().0 += 1;
            term_delta.entry(o).or_default().1 += 1;
        }
        for &[s, p, o] in dels {
            *count_delta.entry(p).or_default() -= 1;
            *ps_delta.entry((p, s)).or_default() -= 1;
            *po_delta.entry((p, o)).or_default() -= 1;
            term_delta.entry(s).or_default().0 -= 1;
            term_delta.entry(o).or_default().1 -= 1;
        }

        for (&p, &d) in &count_delta {
            let e = self.per_predicate.entry(p).or_default();
            e.count = (e.count as i64 + d) as usize;
        }
        for (&(p, s), &d) in &ps_delta {
            if d == 0 {
                continue;
            }
            let old = base.count_pattern(Some(s), Some(p), None) as i64;
            let e = self.per_predicate.entry(p).or_default();
            if old == 0 && old + d > 0 {
                e.distinct_subjects += 1;
            } else if old > 0 && old + d == 0 {
                e.distinct_subjects -= 1;
            }
        }
        for (&(p, o), &d) in &po_delta {
            if d == 0 {
                continue;
            }
            let old = base.count_pattern(None, Some(p), Some(o)) as i64;
            let e = self.per_predicate.entry(p).or_default();
            if old == 0 && old + d > 0 {
                e.distinct_objects += 1;
            } else if old > 0 && old + d == 0 {
                e.distinct_objects -= 1;
            }
        }
        self.per_predicate.retain(|_, e| e.count > 0);
        self.predicates = self.per_predicate.len();

        for (&t, &(ds, dobj)) in &term_delta {
            let is_literal = dict.decode(t).map(|x| x.is_literal()).unwrap_or(false);
            if is_literal {
                // `compute` puts literal objects in `literals` and literal
                // *subjects* (possible via the raw-id API) in `entities` —
                // mirror both memberships independently.
                if dobj != 0 {
                    let old = base.count_pattern(None, None, Some(t)) as i64;
                    if old == 0 && old + dobj > 0 {
                        self.literals += 1;
                    } else if old > 0 && old + dobj == 0 {
                        self.literals -= 1;
                    }
                }
                if ds != 0 {
                    let old = base.count_pattern(Some(t), None, None) as i64;
                    if old == 0 && old + ds > 0 {
                        self.entities += 1;
                    } else if old > 0 && old + ds == 0 {
                        self.entities -= 1;
                    }
                }
            } else if ds != 0 || dobj != 0 {
                let old = base.count_pattern(Some(t), None, None) as i64
                    + base.count_pattern(None, None, Some(t)) as i64;
                let new = old + ds + dobj;
                if old == 0 && new > 0 {
                    self.entities += 1;
                } else if old > 0 && new == 0 {
                    self.entities -= 1;
                }
            }
        }
    }

    /// Statistics for one predicate, if it occurs in the dataset.
    pub fn predicate(&self, p: Id) -> Option<&PredicateStats> {
        self.per_predicate.get(&p)
    }

    /// `average_size(v, p)` from the paper's WCO cost formula: the average
    /// number of `p`-labelled edges per distinct subject (`outgoing = true`)
    /// or per distinct object (`outgoing = false`). Returns `1.0` for unknown
    /// predicates so cost formulas stay well-defined.
    pub fn average_size(&self, p: Option<Id>, outgoing: bool) -> f64 {
        match p.and_then(|p| self.per_predicate.get(&p)) {
            Some(ps) => {
                if outgoing {
                    ps.avg_out_degree().max(1.0)
                } else {
                    ps.avg_in_degree().max(1.0)
                }
            }
            // Variable predicate: fall back to the global average degree.
            None => {
                if self.entities == 0 {
                    1.0
                } else {
                    (self.triples as f64 / self.entities as f64).max(1.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_rdf::Term;

    fn build() -> (Dictionary, Vec<[Id; 3]>) {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("a"));
        let b = d.encode(&Term::iri("b"));
        let c = d.encode(&Term::iri("c"));
        let knows = d.encode(&Term::iri("knows"));
        let name = d.encode(&Term::iri("name"));
        let alice = d.encode(&Term::literal("Alice"));
        let mut spo = vec![[a, knows, b], [a, knows, c], [b, knows, c], [a, name, alice]];
        spo.sort_unstable();
        (d, spo)
    }

    #[test]
    fn headline_counts() {
        let (d, spo) = build();
        let st = DatasetStats::compute(&d, &spo);
        assert_eq!(st.triples, 4);
        assert_eq!(st.entities, 3); // a, b, c
        assert_eq!(st.predicates, 2); // knows, name
        assert_eq!(st.literals, 1); // "Alice"
    }

    #[test]
    fn per_predicate_degrees() {
        let (d, spo) = build();
        let st = DatasetStats::compute(&d, &spo);
        let knows = d.lookup(&Term::iri("knows")).unwrap();
        let ps = st.predicate(knows).unwrap();
        assert_eq!(ps.count, 3);
        assert_eq!(ps.distinct_subjects, 2); // a, b
        assert_eq!(ps.distinct_objects, 2); // b, c
        assert!((ps.avg_out_degree() - 1.5).abs() < 1e-9);
        assert!((ps.avg_in_degree() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn average_size_unknown_predicate_falls_back() {
        let (d, spo) = build();
        let st = DatasetStats::compute(&d, &spo);
        assert!(st.average_size(Some(9999), true) >= 1.0);
        assert!(st.average_size(None, true) >= 1.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dictionary::new();
        let st = DatasetStats::compute(&d, &[]);
        assert_eq!(st.triples, 0);
        assert_eq!(st.entities, 0);
        assert_eq!(st.average_size(None, true), 1.0);
    }
}
