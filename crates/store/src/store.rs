//! The [`TripleStore`] type: loading, indexing and pattern lookup.

use crate::index::{prefix_range, IndexKind, MatchSet};
use crate::stats::DatasetStats;
use uo_par::Parallelism;
use uo_rdf::ntriples;
use uo_rdf::{Dictionary, Id, Term, Triple};

/// An in-memory, read-optimized RDF triple store.
///
/// Usage follows a two-phase protocol: insert triples (via
/// [`insert`](Self::insert), [`insert_terms`](Self::insert_terms) or
/// [`load_ntriples`](Self::load_ntriples)), then call [`build`](Self::build)
/// once to sort the permutation indexes and compute statistics. Lookups
/// before `build` would observe partial indexes and silently return wrong
/// answers, so they panic — in release builds too.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    dict: Dictionary,
    spo: Vec<[Id; 3]>,
    pos: Vec<[Id; 3]>,
    osp: Vec<[Id; 3]>,
    stats: DatasetStats,
    built: bool,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term dictionary (shared by all queries on this store).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary, used when encoding query constants
    /// must observe data terms.
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Number of triples loaded (after deduplication at `build`).
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Dataset-wide statistics. Only meaningful after [`build`](Self::build).
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// Inserts an already-encoded triple.
    pub fn insert(&mut self, t: Triple) {
        self.built = false;
        self.spo.push(t.as_array());
    }

    /// Encodes the three terms and inserts the resulting triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) {
        let t = Triple::new(self.dict.encode(s), self.dict.encode(p), self.dict.encode(o));
        self.insert(t);
    }

    /// Parses an N-Triples document and inserts every statement.
    pub fn load_ntriples(&mut self, doc: &str) -> Result<usize, ntriples::ParseError> {
        let triples = ntriples::parse_document(doc)?;
        let n = triples.len();
        for (s, p, o) in &triples {
            self.insert_terms(s, p, o);
        }
        Ok(n)
    }

    /// Parses a Turtle document and inserts every statement.
    pub fn load_turtle(&mut self, doc: &str) -> Result<usize, uo_rdf::turtle::TurtleError> {
        let triples = uo_rdf::turtle::parse_turtle(doc)?;
        let n = triples.len();
        for (s, p, o) in &triples {
            self.insert_terms(s, p, o);
        }
        Ok(n)
    }

    /// Sorts and deduplicates the permutation indexes and recomputes
    /// statistics. Must be called after the last insertion and before the
    /// first lookup. Idempotent.
    ///
    /// Worker count comes from the `UO_THREADS` environment knob (see
    /// [`Parallelism::from_env`]); use [`build_with`](Self::build_with) for
    /// an explicit count.
    pub fn build(&mut self) {
        self.build_with(Parallelism::from_env());
    }

    /// [`build`](Self::build) with an explicit parallelism policy: the SPO
    /// sort is chunked across workers, then the POS index, the OSP index and
    /// the dataset statistics are produced concurrently. The result is
    /// identical to a sequential build.
    pub fn build_with(&mut self, par: Parallelism) {
        uo_par::sort_unstable(par, &mut self.spo);
        self.spo.dedup();
        let spo = &self.spo;
        let dict = &self.dict;
        let (pos, osp, stats) = uo_par::join3(
            par,
            || {
                let mut v: Vec<[Id; 3]> = spo.iter().map(|&t| IndexKind::Pos.from_spo(t)).collect();
                v.sort_unstable();
                v
            },
            || {
                let mut v: Vec<[Id; 3]> = spo.iter().map(|&t| IndexKind::Osp.from_spo(t)).collect();
                v.sort_unstable();
                v
            },
            || DatasetStats::compute(dict, spo),
        );
        self.pos = pos;
        self.osp = osp;
        self.stats = stats;
        self.built = true;
    }

    /// Looks up all triples matching the pattern, where `None` components are
    /// wildcards. Returns a borrowed sorted range of one permutation index.
    ///
    /// # Panics
    /// Panics if [`build`](Self::build) has not been called since the last
    /// insertion: a lookup on a partial index would silently return wrong
    /// answers, so the misuse is a hard error in release builds too.
    pub fn match_pattern(&self, s: Option<Id>, p: Option<Id>, o: Option<Id>) -> MatchSet<'_> {
        assert!(self.built, "TripleStore::build must be called before lookups");
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                MatchSet { rows: prefix_range(&self.spo, &[s, p, o]), kind: IndexKind::Spo }
            }
            (Some(s), Some(p), None) => {
                MatchSet { rows: prefix_range(&self.spo, &[s, p]), kind: IndexKind::Spo }
            }
            (Some(s), None, Some(o)) => {
                MatchSet { rows: prefix_range(&self.osp, &[o, s]), kind: IndexKind::Osp }
            }
            (Some(s), None, None) => {
                MatchSet { rows: prefix_range(&self.spo, &[s]), kind: IndexKind::Spo }
            }
            (None, Some(p), Some(o)) => {
                MatchSet { rows: prefix_range(&self.pos, &[p, o]), kind: IndexKind::Pos }
            }
            (None, Some(p), None) => {
                MatchSet { rows: prefix_range(&self.pos, &[p]), kind: IndexKind::Pos }
            }
            (None, None, Some(o)) => {
                MatchSet { rows: prefix_range(&self.osp, &[o]), kind: IndexKind::Osp }
            }
            (None, None, None) => MatchSet { rows: &self.spo, kind: IndexKind::Spo },
        }
    }

    /// Exact number of triples matching the pattern (a range length; O(log n)).
    pub fn count_pattern(&self, s: Option<Id>, p: Option<Id>, o: Option<Id>) -> usize {
        self.match_pattern(s, p, o).len()
    }

    /// Returns `true` if the fully-bound triple is in the store.
    pub fn contains(&self, t: Triple) -> bool {
        self.count_pattern(Some(t.subject), Some(t.predicate), Some(t.object)) > 0
    }

    /// The objects of all triples `(s, p, ·)`, in sorted order.
    ///
    /// # Panics
    /// Panics if [`build`](Self::build) has not been called (see
    /// [`match_pattern`](Self::match_pattern)).
    pub fn objects(&self, s: Id, p: Id) -> impl Iterator<Item = Id> + '_ {
        assert!(self.built, "TripleStore::build must be called before lookups");
        prefix_range(&self.spo, &[s, p]).iter().map(|r| r[2])
    }

    /// The subjects of all triples `(·, p, o)`, in sorted order.
    ///
    /// # Panics
    /// Panics if [`build`](Self::build) has not been called (see
    /// [`match_pattern`](Self::match_pattern)).
    pub fn subjects(&self, p: Id, o: Id) -> impl Iterator<Item = Id> + '_ {
        assert!(self.built, "TripleStore::build must be called before lookups");
        prefix_range(&self.pos, &[p, o]).iter().map(|r| r[2])
    }

    /// Iterates over every triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&a| Triple::from(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TripleStore {
        let mut st = TripleStore::new();
        let doc = r#"
<http://ex/a> <http://ex/knows> <http://ex/b> .
<http://ex/a> <http://ex/knows> <http://ex/c> .
<http://ex/b> <http://ex/knows> <http://ex/c> .
<http://ex/a> <http://ex/name> "Alice" .
<http://ex/b> <http://ex/name> "Bob"@en .
<http://ex/a> <http://ex/knows> <http://ex/b> .
"#;
        st.load_ntriples(doc).unwrap();
        st.build();
        st
    }

    fn id(st: &TripleStore, t: &Term) -> Id {
        st.dictionary().lookup(t).unwrap()
    }

    #[test]
    fn duplicates_removed_at_build() {
        let st = small_store();
        assert_eq!(st.len(), 5); // 6 statements, one duplicate
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let st = small_store();
        let a = id(&st, &Term::iri("http://ex/a"));
        let b = id(&st, &Term::iri("http://ex/b"));
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert_eq!(st.count_pattern(Some(a), Some(knows), Some(b)), 1); // spo
        assert_eq!(st.count_pattern(Some(a), Some(knows), None), 2); // sp-
        assert_eq!(st.count_pattern(Some(a), None, Some(b)), 1); // s-o
        assert_eq!(st.count_pattern(Some(a), None, None), 3); // s--
        assert_eq!(st.count_pattern(None, Some(knows), Some(b)), 1); // -po
        assert_eq!(st.count_pattern(None, Some(knows), None), 3); // -p-
        assert_eq!(st.count_pattern(None, None, Some(b)), 1); // --o
        assert_eq!(st.count_pattern(None, None, None), 5); // ---
    }

    #[test]
    fn match_sets_restore_spo_component_order() {
        let st = small_store();
        let knows = id(&st, &Term::iri("http://ex/knows"));
        for spo in st.match_pattern(None, Some(knows), None).iter_spo() {
            assert_eq!(spo[1], knows);
        }
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let st = small_store();
        let a = id(&st, &Term::iri("http://ex/a"));
        let c = id(&st, &Term::iri("http://ex/c"));
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert_eq!(st.objects(a, knows).count(), 2);
        let subs: Vec<Id> = st.subjects(knows, c).collect();
        assert_eq!(subs.len(), 2);
        assert!(subs.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn contains_checks_membership() {
        let st = small_store();
        let a = id(&st, &Term::iri("http://ex/a"));
        let b = id(&st, &Term::iri("http://ex/b"));
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert!(st.contains(Triple::new(a, knows, b)));
        assert!(!st.contains(Triple::new(b, knows, a)));
    }

    #[test]
    fn rebuild_after_more_inserts() {
        let mut st = small_store();
        st.insert_terms(
            &Term::iri("http://ex/c"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        st.build();
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert_eq!(st.count_pattern(None, Some(knows), None), 4);
    }

    #[test]
    fn empty_store_answers_zero() {
        let mut st = TripleStore::new();
        st.build();
        assert_eq!(st.count_pattern(None, None, None), 0);
        assert!(st.is_empty());
    }

    #[test]
    #[should_panic(expected = "TripleStore::build must be called before lookups")]
    fn lookup_before_build_is_a_hard_error() {
        let mut st = TripleStore::new();
        st.insert_terms(
            &Term::iri("http://ex/a"),
            &Term::iri("http://ex/p"),
            &Term::iri("http://ex/b"),
        );
        let _ = st.count_pattern(None, None, None);
    }

    #[test]
    #[should_panic(expected = "TripleStore::build must be called before lookups")]
    fn lookup_after_post_build_insert_is_a_hard_error() {
        let mut st = small_store();
        st.insert_terms(
            &Term::iri("http://ex/z"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        // The insert invalidated the indexes; lookups must panic until the
        // next build().
        let _ = st.count_pattern(None, None, None);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let mut doc = String::new();
        for i in 0..500 {
            doc.push_str(&format!(
                "<http://e/{}> <http://p/{}> <http://e/{}> .\n",
                i % 89,
                i % 7,
                (i * 31) % 97
            ));
        }
        let mut seq = TripleStore::new();
        seq.load_ntriples(&doc).unwrap();
        seq.build_with(Parallelism::sequential());
        for threads in [2, 4, 8] {
            let mut par = TripleStore::new();
            par.load_ntriples(&doc).unwrap();
            par.build_with(Parallelism::new(threads));
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            let all: Vec<Triple> = seq.iter().collect();
            let all_par: Vec<Triple> = par.iter().collect();
            assert_eq!(all, all_par, "threads={threads}");
            assert_eq!(par.stats().triples, seq.stats().triples);
            assert_eq!(par.stats().entities, seq.stats().entities);
            assert_eq!(par.stats().predicates, seq.stats().predicates);
            // Spot-check a non-SPO permutation range.
            let p0 = par.dictionary().lookup(&Term::iri("http://p/0")).unwrap();
            assert_eq!(
                par.match_pattern(None, Some(p0), None).rows,
                seq.match_pattern(None, Some(p0), None).rows
            );
        }
    }
}
