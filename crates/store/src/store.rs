//! The [`TripleStore`] facade: the classic two-phase (insert → `build` →
//! read) API, now layered on the MVCC [`Snapshot`]/[`crate::StoreWriter`]
//! split.
//!
//! The facade keeps every pre-MVCC call site compiling: examples, the data
//! generators, benches and tests construct a `TripleStore`, load triples
//! and call [`build`](TripleStore::build) exactly as before. Internally the
//! store owns an `Arc<Snapshot>` plus a pending-insert buffer, and `build`
//! publishes a new snapshot (a bulk build the first time, a merge commit
//! for incremental rebuilds). All *read* methods live on [`Snapshot`]; the
//! facade [`Deref`]s to its current snapshot, so `&TripleStore` coerces to
//! `&Snapshot` at every query-layer call site — and panics (in release
//! builds too) if the store has not been built since the last insertion,
//! because a lookup on a stale snapshot would silently return wrong
//! answers.

use crate::snapshot::Snapshot;
use crate::writer::commit_delta;
use std::ops::Deref;
use std::sync::Arc;
use uo_par::Parallelism;
use uo_rdf::ntriples;
use uo_rdf::{Dictionary, Id, Term, Triple};

/// An in-memory RDF triple store with a two-phase protocol: insert triples
/// (via [`insert`](Self::insert), [`insert_terms`](Self::insert_terms) or
/// the streaming loaders), then call [`build`](Self::build) once to publish
/// a queryable [`Snapshot`]. For live read/write workloads use
/// [`StoreWriter`](crate::StoreWriter) directly.
#[derive(Debug, Clone)]
pub struct TripleStore {
    dict: Arc<Dictionary>,
    pending: Vec<[Id; 3]>,
    snap: Arc<Snapshot>,
    built: bool,
}

impl Default for TripleStore {
    fn default() -> Self {
        TripleStore {
            dict: Arc::new(Dictionary::new()),
            pending: Vec::new(),
            snap: Arc::new(Snapshot::empty()),
            built: false,
        }
    }
}

impl Deref for TripleStore {
    type Target = Snapshot;

    /// The current snapshot — every read method
    /// ([`match_pattern`](Snapshot::match_pattern), [`iter`](Snapshot::iter),
    /// [`stats`](Snapshot::stats), …) resolves through here.
    ///
    /// # Panics
    /// Panics if [`build`](TripleStore::build) has not been called since the
    /// last insertion: the snapshot would not include pending rows, so the
    /// misuse is a hard error in release builds too.
    fn deref(&self) -> &Snapshot {
        assert!(self.built, "TripleStore::build must be called before lookups");
        &self.snap
    }
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-built snapshot in the facade (built state).
    pub fn from_snapshot(snap: Arc<Snapshot>) -> Self {
        TripleStore { dict: Arc::clone(snap.dict_arc()), pending: Vec::new(), snap, built: true }
    }

    /// The current snapshot handle — share this with readers (e.g. the HTTP
    /// server) for lock-free concurrent queries.
    ///
    /// # Panics
    /// Panics if the store has not been built since the last insertion.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        assert!(self.built, "TripleStore::build must be called before lookups");
        Arc::clone(&self.snap)
    }

    /// The term dictionary (valid before and after `build`; shared by all
    /// queries on this store).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary, used when encoding query constants
    /// must observe data terms. Copy-on-write: the published snapshot's
    /// dictionary is never mutated through this.
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        Arc::make_mut(&mut self.dict)
    }

    /// Number of triples: the built snapshot's count plus any pending
    /// (not yet deduplicated) insertions.
    pub fn len(&self) -> usize {
        self.snap.len() + self.pending.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.snap.is_empty() && self.pending.is_empty()
    }

    /// Inserts an already-encoded triple (ids must come from this store's
    /// dictionary).
    pub fn insert(&mut self, t: Triple) {
        self.built = false;
        self.pending.push(t.as_array());
    }

    /// Encodes the three terms and inserts the resulting triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) {
        let dict = Arc::make_mut(&mut self.dict);
        let t = Triple::new(dict.encode(s), dict.encode(p), dict.encode(o));
        self.insert(t);
    }

    /// Parses an N-Triples document and inserts every statement, streaming
    /// (statement-by-statement — no intermediate term buffer). Atomic on
    /// error: a malformed document leaves the store exactly as it was.
    pub fn load_ntriples(&mut self, doc: &str) -> Result<usize, ntriples::ParseError> {
        let undo = (Arc::clone(&self.dict), self.pending.len(), self.built);
        ntriples::parse_document_each(doc, |s, p, o| self.insert_terms(&s, &p, &o))
            .inspect_err(|_| self.unwind_load(undo))
    }

    /// Parses a Turtle document and inserts every statement, streaming.
    /// Atomic on error, like [`load_ntriples`](Self::load_ntriples).
    pub fn load_turtle(&mut self, doc: &str) -> Result<usize, uo_rdf::turtle::TurtleError> {
        let undo = (Arc::clone(&self.dict), self.pending.len(), self.built);
        uo_rdf::turtle::parse_turtle_each(doc, &mut |s, p, o| self.insert_terms(&s, &p, &o))
            .inspect_err(|_| self.unwind_load(undo))
    }

    /// Restores the pre-load dictionary handle, pending length and built
    /// flag after a failed streaming load (the captured `Arc` keeps the old
    /// dictionary alive, so the partial load's copy-on-write clone is
    /// simply dropped).
    fn unwind_load(&mut self, (dict, pending_len, built): (Arc<Dictionary>, usize, bool)) {
        self.dict = dict;
        self.pending.truncate(pending_len);
        self.built = built;
    }

    /// Publishes the pending insertions as a new snapshot. Must be called
    /// after the last insertion and before the first lookup. Idempotent: a
    /// `build` with nothing pending keeps the current snapshot (and epoch).
    ///
    /// Worker count comes from the `UO_THREADS` environment knob (see
    /// [`Parallelism::from_env`]); use [`build_with`](Self::build_with) for
    /// an explicit count.
    pub fn build(&mut self) {
        self.build_with(Parallelism::from_env());
    }

    /// [`build`](Self::build) with an explicit parallelism policy. The first
    /// build is a bulk build (parallel sort + concurrent index/statistics
    /// derivation); a rebuild after further insertions merges the new rows
    /// into the existing snapshot instead of re-sorting everything. The
    /// result is identical to a sequential from-scratch build.
    pub fn build_with(&mut self, par: Parallelism) {
        if self.built && self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let dict = Arc::clone(&self.dict);
        self.snap = if self.snap.is_empty() {
            Arc::new(Snapshot::build_from(dict, pending, self.snap.epoch() + 1, par))
        } else {
            let (snap, _) = commit_delta(&self.snap, dict, pending, Vec::new(), par);
            Arc::new(snap)
        };
        self.built = true;
    }

    /// Consumes the facade, returning the built snapshot.
    ///
    /// # Panics
    /// Panics if the store has not been built since the last insertion.
    pub fn into_snapshot(self) -> Arc<Snapshot> {
        assert!(self.built, "TripleStore::build must be called before lookups");
        self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TripleStore {
        let mut st = TripleStore::new();
        let doc = r#"
<http://ex/a> <http://ex/knows> <http://ex/b> .
<http://ex/a> <http://ex/knows> <http://ex/c> .
<http://ex/b> <http://ex/knows> <http://ex/c> .
<http://ex/a> <http://ex/name> "Alice" .
<http://ex/b> <http://ex/name> "Bob"@en .
<http://ex/a> <http://ex/knows> <http://ex/b> .
"#;
        st.load_ntriples(doc).unwrap();
        st.build();
        st
    }

    fn id(st: &TripleStore, t: &Term) -> Id {
        st.dictionary().lookup(t).unwrap()
    }

    #[test]
    fn duplicates_removed_at_build() {
        let st = small_store();
        assert_eq!(st.len(), 5); // 6 statements, one duplicate
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let st = small_store();
        let a = id(&st, &Term::iri("http://ex/a"));
        let b = id(&st, &Term::iri("http://ex/b"));
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert_eq!(st.count_pattern(Some(a), Some(knows), Some(b)), 1); // spo
        assert_eq!(st.count_pattern(Some(a), Some(knows), None), 2); // sp-
        assert_eq!(st.count_pattern(Some(a), None, Some(b)), 1); // s-o
        assert_eq!(st.count_pattern(Some(a), None, None), 3); // s--
        assert_eq!(st.count_pattern(None, Some(knows), Some(b)), 1); // -po
        assert_eq!(st.count_pattern(None, Some(knows), None), 3); // -p-
        assert_eq!(st.count_pattern(None, None, Some(b)), 1); // --o
        assert_eq!(st.count_pattern(None, None, None), 5); // ---
    }

    #[test]
    fn match_sets_restore_spo_component_order() {
        let st = small_store();
        let knows = id(&st, &Term::iri("http://ex/knows"));
        for spo in st.match_pattern(None, Some(knows), None).iter_spo() {
            assert_eq!(spo[1], knows);
        }
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let st = small_store();
        let a = id(&st, &Term::iri("http://ex/a"));
        let c = id(&st, &Term::iri("http://ex/c"));
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert_eq!(st.objects(a, knows).count(), 2);
        let subs: Vec<Id> = st.subjects(knows, c).collect();
        assert_eq!(subs.len(), 2);
        assert!(subs.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn contains_checks_membership() {
        let st = small_store();
        let a = id(&st, &Term::iri("http://ex/a"));
        let b = id(&st, &Term::iri("http://ex/b"));
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert!(st.contains(Triple::new(a, knows, b)));
        assert!(!st.contains(Triple::new(b, knows, a)));
    }

    #[test]
    fn rebuild_after_more_inserts() {
        let mut st = small_store();
        let epoch_before = st.snapshot().epoch();
        st.insert_terms(
            &Term::iri("http://ex/c"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        st.build();
        let knows = id(&st, &Term::iri("http://ex/knows"));
        assert_eq!(st.count_pattern(None, Some(knows), None), 4);
        assert_eq!(st.snapshot().epoch(), epoch_before + 1, "rebuild bumps the epoch");
    }

    #[test]
    fn build_is_idempotent() {
        let mut st = small_store();
        let snap = st.snapshot();
        st.build();
        assert!(Arc::ptr_eq(&snap, &st.snapshot()), "no-op build keeps the snapshot");
    }

    #[test]
    fn empty_store_answers_zero() {
        let mut st = TripleStore::new();
        st.build();
        assert_eq!(st.count_pattern(None, None, None), 0);
        assert!(st.is_empty());
    }

    #[test]
    #[should_panic(expected = "TripleStore::build must be called before lookups")]
    fn lookup_before_build_is_a_hard_error() {
        let mut st = TripleStore::new();
        st.insert_terms(
            &Term::iri("http://ex/a"),
            &Term::iri("http://ex/p"),
            &Term::iri("http://ex/b"),
        );
        let _ = st.count_pattern(None, None, None);
    }

    #[test]
    #[should_panic(expected = "TripleStore::build must be called before lookups")]
    fn lookup_after_post_build_insert_is_a_hard_error() {
        let mut st = small_store();
        st.insert_terms(
            &Term::iri("http://ex/z"),
            &Term::iri("http://ex/knows"),
            &Term::iri("http://ex/a"),
        );
        // The insert invalidated the snapshot; lookups must panic until the
        // next build().
        let _ = st.count_pattern(None, None, None);
    }

    #[test]
    fn dictionary_mut_does_not_disturb_snapshot() {
        let mut st = small_store();
        let before = st.snapshot();
        let qid = st.dictionary_mut().encode(&Term::iri("http://ex/query-constant"));
        assert!(qid > 0);
        // The published snapshot's dictionary is unchanged (copy-on-write).
        assert!(before.dictionary().lookup(&Term::iri("http://ex/query-constant")).is_none());
        // The store is still built and queryable.
        assert_eq!(st.count_pattern(None, None, None), 5);
    }

    #[test]
    fn failed_load_is_atomic() {
        let mut st = small_store();
        let len = st.len();
        let dict_len = st.dictionary().len();
        let bad = "<http://ex/new1> <http://ex/p> <http://ex/new2> .\nbroken line\n";
        assert!(st.load_ntriples(bad).is_err());
        assert_eq!(st.len(), len, "no partial statements buffered");
        assert_eq!(st.dictionary().len(), dict_len, "no partial terms encoded");
        // The store is still built and queryable (nothing was invalidated).
        assert_eq!(st.count_pattern(None, None, None), 5);
        assert!(st.load_turtle("@prefix ex: <http://ex/> .\nex:a ex:p [ broken").is_err());
        assert_eq!(st.dictionary().len(), dict_len);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let mut doc = String::new();
        for i in 0..500 {
            doc.push_str(&format!(
                "<http://e/{}> <http://p/{}> <http://e/{}> .\n",
                i % 89,
                i % 7,
                (i * 31) % 97
            ));
        }
        let mut seq = TripleStore::new();
        seq.load_ntriples(&doc).unwrap();
        seq.build_with(Parallelism::sequential());
        for threads in [2, 4, 8] {
            let mut par = TripleStore::new();
            par.load_ntriples(&doc).unwrap();
            par.build_with(Parallelism::new(threads));
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            let all: Vec<Triple> = seq.iter().collect();
            let all_par: Vec<Triple> = par.iter().collect();
            assert_eq!(all, all_par, "threads={threads}");
            assert_eq!(par.stats().triples, seq.stats().triples);
            assert_eq!(par.stats().entities, seq.stats().entities);
            assert_eq!(par.stats().predicates, seq.stats().predicates);
            // Spot-check a non-SPO permutation range.
            let p0 = par.dictionary().lookup(&Term::iri("http://p/0")).unwrap();
            assert_eq!(
                par.match_pattern(None, Some(p0), None).rows(),
                seq.match_pattern(None, Some(p0), None).rows()
            );
        }
    }
}
