//! Sorted permutation indexes and range lookup.

use uo_rdf::Id;

/// Which permutation a [`MatchSet`] slice is drawn from. Determines the
/// component order of each row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Rows are `[s, p, o]`.
    Spo,
    /// Rows are `[p, o, s]`.
    Pos,
    /// Rows are `[o, s, p]`.
    Osp,
}

impl IndexKind {
    /// The three permutations, in the order levels store their runs.
    pub const ALL: [IndexKind; 3] = [IndexKind::Spo, IndexKind::Pos, IndexKind::Osp];

    /// Position of this permutation inside a level's run arrays.
    #[inline]
    pub(crate) fn slot(self) -> usize {
        match self {
            IndexKind::Spo => 0,
            IndexKind::Pos => 1,
            IndexKind::Osp => 2,
        }
    }

    /// Reorders a permuted row back into `[s, p, o]`.
    #[inline]
    pub fn to_spo(self, row: [Id; 3]) -> [Id; 3] {
        match self {
            IndexKind::Spo => row,
            IndexKind::Pos => [row[2], row[0], row[1]],
            IndexKind::Osp => [row[1], row[2], row[0]],
        }
    }

    /// Permutes an `[s, p, o]` triple into this index's component order.
    #[inline]
    pub fn from_spo(self, t: [Id; 3]) -> [Id; 3] {
        match self {
            IndexKind::Spo => t,
            IndexKind::Pos => [t[1], t[2], t[0]],
            IndexKind::Osp => [t[2], t[0], t[1]],
        }
    }
}

/// How a [`MatchSet`] holds its rows: a zero-copy borrow of one in-memory
/// run (the single-level fast path) or an owned merge result (multi-level
/// patterns and disk-resident runs).
#[derive(Debug, Clone)]
enum Repr<'a> {
    Borrowed(&'a [[Id; 3]]),
    Owned(Vec<[Id; 3]>),
}

/// The result of a triple pattern lookup: a sorted run of rows in one
/// permutation order, plus the permutation it came from.
///
/// When the pattern's range touches a single in-memory run the rows borrow
/// from the store (no copy); when it spans several tiers, or a
/// disk-resident run, the rows are an owned k-way merge. Either way
/// [`rows`](MatchSet::rows) is a sorted, deduplicated slice of live triples
/// in the index's permutation order.
#[derive(Debug, Clone)]
pub struct MatchSet<'a> {
    repr: Repr<'a>,
    /// The permutation the rows are stored in.
    pub kind: IndexKind,
}

impl<'a> MatchSet<'a> {
    /// A match set borrowing a sorted slice from the store.
    #[inline]
    pub fn borrowed(rows: &'a [[Id; 3]], kind: IndexKind) -> MatchSet<'a> {
        MatchSet { repr: Repr::Borrowed(rows), kind }
    }

    /// A match set owning a merged sorted run.
    #[inline]
    pub fn owned(rows: Vec<[Id; 3]>, kind: IndexKind) -> MatchSet<'a> {
        MatchSet { repr: Repr::Owned(rows), kind }
    }

    /// The matching rows, sorted in the index's permutation order.
    #[inline]
    pub fn rows(&self) -> &[[Id; 3]] {
        match &self.repr {
            Repr::Borrowed(r) => r,
            Repr::Owned(v) => v,
        }
    }

    /// Consumes the set, returning the rows by value (borrowed fast-path
    /// rows are copied).
    pub fn into_rows(self) -> Vec<[Id; 3]> {
        match self.repr {
            Repr::Borrowed(r) => r.to_vec(),
            Repr::Owned(v) => v,
        }
    }

    /// Number of matching triples (exact).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows().len()
    }

    /// True if no triple matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows().is_empty()
    }

    /// Iterates over matches in `[s, p, o]` order of components.
    pub fn iter_spo(&self) -> impl Iterator<Item = [Id; 3]> + '_ {
        let kind = self.kind;
        self.rows().iter().map(move |&r| kind.to_spo(r))
    }
}

/// Finds the half-open index range of `sorted` whose rows start with
/// `prefix` (`prefix.len()` ≤ 3). `sorted` must be lexicographically
/// sorted.
pub fn prefix_bounds(sorted: &[[Id; 3]], prefix: &[Id]) -> (usize, usize) {
    debug_assert!(prefix.len() <= 3);
    if prefix.is_empty() {
        return (0, sorted.len());
    }
    let lo = sorted.partition_point(|row| row[..prefix.len()] < *prefix);
    let hi = sorted.partition_point(|row| {
        let head = &row[..prefix.len()];
        head <= prefix
    });
    (lo, hi)
}

/// Finds the subrange of `sorted` whose rows start with `prefix`
/// (`prefix.len()` ≤ 3). `sorted` must be lexicographically sorted.
pub fn prefix_range<'a>(sorted: &'a [[Id; 3]], prefix: &[Id]) -> &'a [[Id; 3]] {
    let (lo, hi) = prefix_bounds(sorted, prefix);
    &sorted[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> Vec<[Id; 3]> {
        let mut v =
            vec![[1, 1, 1], [1, 1, 2], [1, 2, 1], [2, 1, 1], [2, 1, 3], [2, 2, 2], [3, 5, 9]];
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_prefix_returns_all() {
        let v = idx();
        assert_eq!(prefix_range(&v, &[]).len(), 7);
    }

    #[test]
    fn one_component_prefix() {
        let v = idx();
        assert_eq!(prefix_range(&v, &[1]).len(), 3);
        assert_eq!(prefix_range(&v, &[2]).len(), 3);
        assert_eq!(prefix_range(&v, &[3]).len(), 1);
        assert_eq!(prefix_range(&v, &[4]).len(), 0);
    }

    #[test]
    fn two_component_prefix() {
        let v = idx();
        assert_eq!(prefix_range(&v, &[1, 1]).len(), 2);
        assert_eq!(prefix_range(&v, &[2, 2]).len(), 1);
        assert_eq!(prefix_range(&v, &[2, 9]).len(), 0);
    }

    #[test]
    fn full_prefix_is_point_lookup() {
        let v = idx();
        assert_eq!(prefix_range(&v, &[1, 1, 2]).len(), 1);
        assert_eq!(prefix_range(&v, &[1, 1, 9]).len(), 0);
    }

    #[test]
    fn permutation_round_trip() {
        for kind in IndexKind::ALL {
            let t = [10, 20, 30];
            assert_eq!(kind.to_spo(kind.from_spo(t)), t);
        }
    }

    #[test]
    fn matchset_iter_restores_spo_order() {
        let rows = vec![IndexKind::Pos.from_spo([7, 8, 9])];
        let ms = MatchSet::borrowed(&rows, IndexKind::Pos);
        assert_eq!(ms.iter_spo().next().unwrap(), [7, 8, 9]);
        let owned = MatchSet::owned(rows.clone(), IndexKind::Pos);
        assert_eq!(owned.rows(), &rows[..]);
        assert_eq!(owned.into_rows(), rows);
    }
}
