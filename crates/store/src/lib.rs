//! In-memory triple store with sorted permutation indexes.
//!
//! The store keeps every dataset triple in three sorted permutations —
//! **SPO**, **POS** and **OSP** — which together answer any triple pattern
//! with a bound prefix via binary search:
//!
//! | bound positions | index | prefix |
//! |---|---|---|
//! | s, p, o | SPO | (s,p,o) |
//! | s, p    | SPO | (s,p)   |
//! | s, o    | OSP | (o,s)   |
//! | s       | SPO | (s)     |
//! | p, o    | POS | (p,o)   |
//! | p       | POS | (p)     |
//! | o       | OSP | (o)     |
//! | —       | SPO | full scan |
//!
//! The exact match count of any single triple pattern is therefore the length
//! of a binary-searched range, which is what the paper's cardinality
//! estimation bootstraps from (Section 5.1.2).
//!
//! # MVCC architecture
//!
//! The store is split into an immutable [`Snapshot`] (the indexes, the
//! statistics and an `Arc`-shared dictionary, stamped with a monotonically
//! increasing *epoch*) and a [`StoreWriter`] that buffers inserts/deletes
//! and publishes them by **merging** the delta into the previous snapshot's
//! sorted runs — O(N + K) for a K-triple commit, never a re-sort of the N
//! base rows. Readers clone the `Arc<Snapshot>` once and are never blocked
//! or disturbed by commits; queries in flight during a commit answer from
//! their admission-time version. [`TripleStore`] remains as a thin facade
//! (insert → `build()` → read) over the same machinery and dereferences to
//! its current [`Snapshot`].
//!
//! # Example
//!
//! ```
//! use uo_rdf::Term;
//! use uo_store::TripleStore;
//!
//! let mut store = TripleStore::new();
//! store.insert_terms(
//!     &Term::iri("http://ex/alice"),
//!     &Term::iri("http://ex/knows"),
//!     &Term::iri("http://ex/bob"),
//! );
//! store.build();
//! let p = store.dictionary().lookup(&Term::iri("http://ex/knows")).unwrap();
//! assert_eq!(store.match_pattern(None, Some(p), None).len(), 1);
//! ```

pub mod durable;
pub mod index;
pub mod persist;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod writer;

pub use durable::{
    CheckpointReport, DurableError, DurableMetrics, DurableOptions, DurableStore, FsyncPolicy,
    RecoveryReport,
};
pub use index::{IndexKind, MatchSet};
pub use persist::{load_from_file, read_snapshot, save_to_file, write_snapshot, SnapshotError};
pub use snapshot::Snapshot;
pub use stats::DatasetStats;
pub use store::TripleStore;
pub use writer::{CommitStats, StoreWriter};
