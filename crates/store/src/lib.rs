//! Tiered triple store with sorted permutation indexes, memory- or
//! disk-resident.
//!
//! The store keeps every dataset triple in three sorted permutations —
//! **SPO**, **POS** and **OSP** — which together answer any triple pattern
//! with a bound prefix via binary search:
//!
//! | bound positions | index | prefix |
//! |---|---|---|
//! | s, p, o | SPO | (s,p,o) |
//! | s, p    | SPO | (s,p)   |
//! | s, o    | OSP | (o,s)   |
//! | s       | SPO | (s)     |
//! | p, o    | POS | (p,o)   |
//! | p       | POS | (p)     |
//! | o       | OSP | (o)     |
//! | —       | SPO | full scan |
//!
//! The exact match count of any single triple pattern is therefore the length
//! of a binary-searched range, which is what the paper's cardinality
//! estimation bootstraps from (Section 5.1.2).
//!
//! # MVCC architecture
//!
//! The store is split into an immutable [`Snapshot`] (a stack of tiered
//! sorted runs, the statistics and an `Arc`-shared dictionary, stamped
//! with a monotonically increasing *epoch*) and a [`StoreWriter`] that
//! buffers inserts/deletes and publishes them by **appending one small
//! level** to the previous snapshot's run stack — O(K log N) for a
//! K-triple commit, independent of the N base rows, which stay shared
//! behind `Arc`s. Reads k-way merge the per-level ranges; compaction
//! (background or inline at a hard depth cap) folds the stack back into
//! one level without changing content or epoch. Readers clone the
//! `Arc<Snapshot>` once and are never blocked or disturbed by commits;
//! queries in flight during a commit answer from their admission-time
//! version. [`TripleStore`] remains as a thin facade (insert → `build()`
//! → read) over the same machinery and dereferences to its current
//! [`Snapshot`].
//!
//! # Beyond-RAM operation
//!
//! Snapshots persist in the paged **UOST v3** format (`docs/FORMAT.md`):
//! page-aligned, one CRC32 per page, footer-indexed. [`load_from_file`]
//! opens such a file *lazily* — triple pages are fetched on demand into an
//! LRU cache bounded by [`PagedOptions::cache_bytes`] — so a store larger
//! than RAM serves queries cold. [`DurableStore`] layers a write-ahead log
//! and **incremental checkpoints** (immutable run files plus a small
//! manifest) on top for crash safety.
//!
//! # Example
//!
//! ```
//! use uo_rdf::Term;
//! use uo_store::TripleStore;
//!
//! let mut store = TripleStore::new();
//! store.insert_terms(
//!     &Term::iri("http://ex/alice"),
//!     &Term::iri("http://ex/knows"),
//!     &Term::iri("http://ex/bob"),
//! );
//! store.build();
//! let p = store.dictionary().lookup(&Term::iri("http://ex/knows")).unwrap();
//! assert_eq!(store.match_pattern(None, Some(p), None).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod durable;
pub mod index;
mod paged;
pub mod persist;
mod runs;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod writer;

pub use durable::{
    CheckpointReport, DurableError, DurableMetrics, DurableOptions, DurableStore, FsyncPolicy,
    RecoveryReport,
};
pub use index::{IndexKind, MatchSet};
pub use paged::{PageCacheSnapshot, PagedOptions};
pub use persist::{
    load_from_file, load_from_file_with, read_snapshot, save_to_file, write_snapshot, SnapshotError,
};
pub use snapshot::{Snapshot, TierStats};
pub use stats::DatasetStats;
pub use store::TripleStore;
pub use writer::{CommitStats, StoreWriter};
