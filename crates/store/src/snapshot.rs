//! The immutable, shareable [`Snapshot`]: one MVCC version of the dataset.
//!
//! A snapshot owns the three sorted permutation indexes (SPO / POS / OSP),
//! the dataset statistics and an [`Arc`]-shared dictionary, and carries a
//! monotonically increasing **epoch**. Snapshots are cheap to share
//! (`Arc<Snapshot>`) and never change after construction: readers that
//! clone the `Arc` keep answering from their version no matter how many
//! commits land afterwards — that is the whole concurrency story, no locks
//! on the read path.
//!
//! New snapshots come from two places:
//!
//! - [`Snapshot::build_from`] — a bulk build (sort + dedup + derive), used
//!   for initial loads;
//! - [`StoreWriter::commit`](crate::StoreWriter::commit) — a merge-based
//!   commit that folds a small delta into the previous snapshot's sorted
//!   runs in O(N + K) without re-sorting the base.

use crate::index::{prefix_range, IndexKind, MatchSet};
use crate::stats::DatasetStats;
use std::sync::Arc;
use uo_par::Parallelism;
use uo_rdf::{Dictionary, Id, Triple};

/// An immutable, fully-indexed version of the dataset. See the module docs.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) dict: Arc<Dictionary>,
    pub(crate) epoch: u64,
    pub(crate) spo: Vec<[Id; 3]>,
    pub(crate) pos: Vec<[Id; 3]>,
    pub(crate) osp: Vec<[Id; 3]>,
    pub(crate) stats: DatasetStats,
}

impl Snapshot {
    /// The empty snapshot at epoch 0.
    pub fn empty() -> Snapshot {
        Snapshot {
            dict: Arc::new(Dictionary::new()),
            epoch: 0,
            spo: Vec::new(),
            pos: Vec::new(),
            osp: Vec::new(),
            stats: DatasetStats::default(),
        }
    }

    /// Bulk-builds a snapshot from unsorted SPO rows: parallel sort + dedup,
    /// then the POS index, the OSP index and the statistics are derived
    /// concurrently. Every id in `spo` must be valid in `dict`.
    pub fn build_from(
        dict: Arc<Dictionary>,
        mut spo: Vec<[Id; 3]>,
        epoch: u64,
        par: Parallelism,
    ) -> Snapshot {
        uo_par::sort_unstable(par, &mut spo);
        spo.dedup();
        let (pos, osp, stats) = derive_indexes(&dict, &spo, par);
        Snapshot { dict, epoch, spo, pos, osp, stats }
    }

    /// The term dictionary of this version.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The shared dictionary handle (cheap to clone).
    pub fn dict_arc(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// This version's epoch. Epochs increase by one per commit; two
    /// snapshots of the same store with equal epochs hold identical data,
    /// which is what the serving layer's plan-cache invalidation keys on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of triples in this version.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if this version holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Dataset-wide statistics of this version.
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// Looks up all triples matching the pattern, where `None` components
    /// are wildcards. Returns a borrowed sorted range of one permutation
    /// index.
    pub fn match_pattern(&self, s: Option<Id>, p: Option<Id>, o: Option<Id>) -> MatchSet<'_> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                MatchSet { rows: prefix_range(&self.spo, &[s, p, o]), kind: IndexKind::Spo }
            }
            (Some(s), Some(p), None) => {
                MatchSet { rows: prefix_range(&self.spo, &[s, p]), kind: IndexKind::Spo }
            }
            (Some(s), None, Some(o)) => {
                MatchSet { rows: prefix_range(&self.osp, &[o, s]), kind: IndexKind::Osp }
            }
            (Some(s), None, None) => {
                MatchSet { rows: prefix_range(&self.spo, &[s]), kind: IndexKind::Spo }
            }
            (None, Some(p), Some(o)) => {
                MatchSet { rows: prefix_range(&self.pos, &[p, o]), kind: IndexKind::Pos }
            }
            (None, Some(p), None) => {
                MatchSet { rows: prefix_range(&self.pos, &[p]), kind: IndexKind::Pos }
            }
            (None, None, Some(o)) => {
                MatchSet { rows: prefix_range(&self.osp, &[o]), kind: IndexKind::Osp }
            }
            (None, None, None) => MatchSet { rows: &self.spo, kind: IndexKind::Spo },
        }
    }

    /// Exact number of triples matching the pattern (a range length;
    /// O(log n)).
    pub fn count_pattern(&self, s: Option<Id>, p: Option<Id>, o: Option<Id>) -> usize {
        self.match_pattern(s, p, o).len()
    }

    /// Returns `true` if the fully-bound triple is in this version.
    pub fn contains(&self, t: Triple) -> bool {
        self.count_pattern(Some(t.subject), Some(t.predicate), Some(t.object)) > 0
    }

    /// The objects of all triples `(s, p, ·)`, in sorted order.
    pub fn objects(&self, s: Id, p: Id) -> impl Iterator<Item = Id> + '_ {
        prefix_range(&self.spo, &[s, p]).iter().map(|r| r[2])
    }

    /// The subjects of all triples `(·, p, o)`, in sorted order.
    pub fn subjects(&self, p: Id, o: Id) -> impl Iterator<Item = Id> + '_ {
        prefix_range(&self.pos, &[p, o]).iter().map(|r| r[2])
    }

    /// Iterates over every triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&a| Triple::from(a))
    }
}

/// Derives the POS index, the OSP index and the statistics from a sorted,
/// deduplicated SPO index — the three jobs run concurrently.
pub(crate) fn derive_indexes(
    dict: &Dictionary,
    spo: &[[Id; 3]],
    par: Parallelism,
) -> (Vec<[Id; 3]>, Vec<[Id; 3]>, DatasetStats) {
    uo_par::join3(
        par,
        || {
            let mut v: Vec<[Id; 3]> = spo.iter().map(|&t| IndexKind::Pos.from_spo(t)).collect();
            v.sort_unstable();
            v
        },
        || {
            let mut v: Vec<[Id; 3]> = spo.iter().map(|&t| IndexKind::Osp.from_spo(t)).collect();
            v.sort_unstable();
            v
        },
        || DatasetStats::compute(dict, spo),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_rdf::Term;

    fn sample() -> Snapshot {
        let mut dict = Dictionary::new();
        let a = dict.encode(&Term::iri("http://a"));
        let b = dict.encode(&Term::iri("http://b"));
        let p = dict.encode(&Term::iri("http://p"));
        let q = dict.encode(&Term::iri("http://q"));
        let spo = vec![[a, p, b], [b, p, a], [a, q, a], [a, p, b]];
        Snapshot::build_from(Arc::new(dict), spo, 7, Parallelism::sequential())
    }

    #[test]
    fn build_from_sorts_and_dedups() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.epoch(), 7);
        let rows: Vec<[Id; 3]> = s.iter().map(|t| t.as_array()).collect();
        assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }

    #[test]
    fn empty_snapshot_is_epoch_zero() {
        let s = Snapshot::empty();
        assert_eq!(s.epoch(), 0);
        assert!(s.is_empty());
        assert_eq!(s.count_pattern(None, None, None), 0);
    }

    #[test]
    fn pattern_shapes_answer_from_permutations() {
        let s = sample();
        let a = s.dictionary().lookup(&Term::iri("http://a")).unwrap();
        let p = s.dictionary().lookup(&Term::iri("http://p")).unwrap();
        assert_eq!(s.count_pattern(Some(a), None, None), 2);
        assert_eq!(s.count_pattern(None, Some(p), None), 2);
        assert_eq!(s.count_pattern(None, None, Some(a)), 2);
        assert_eq!(s.objects(a, p).count(), 1);
        assert_eq!(s.subjects(p, a).count(), 1);
    }
}
