//! The immutable, shareable [`Snapshot`]: one MVCC version of the dataset.
//!
//! A snapshot is a bounded stack of **tiered sorted runs**
//! (levels): each commit appends one small level holding only its own
//! adds and tombstones (O(K) for a K-row delta), and reads resolve a
//! pattern by k-way merging the per-level ranges
//! ([`uo_par::merge_tiers`]). Levels are immutable and `Arc`-shared, so a
//! new snapshot reuses every existing level by reference — readers that
//! clone the `Arc<Snapshot>` keep answering from their version no matter
//! how many commits land afterwards; no locks on the read path.
//!
//! Runs live in memory (sorted `Vec`s) or in paged v3 files
//! (lazily-paged disk sections), loaded page by page — a store larger than
//! RAM serves queries cold. [`Snapshot::compact_with`] folds the whole
//! stack into a single level; the server's maintenance thread runs it in
//! the background when the stack exceeds a fan-in threshold, and the
//! writer compacts inline at a hard cap so the stack stays bounded.
//!
//! New snapshots come from three places:
//!
//! - [`Snapshot::build_from`] — a bulk build (sort + dedup + derive), used
//!   for initial loads;
//! - [`StoreWriter::commit`](crate::StoreWriter::commit) — appends one
//!   level per commit;
//! - [`Snapshot::compact_with`] — same content, same epoch, one level.

use crate::index::{IndexKind, MatchSet};
use crate::paged::{PageCacheSnapshot, PageCacheStats};
use crate::runs::{Level, RowsRef, RunData};
use crate::stats::DatasetStats;
use crate::SnapshotError;
use std::sync::Arc;
use uo_par::Parallelism;
use uo_rdf::{Dictionary, Id, Triple};

/// Commits compact inline once the level stack reaches this depth, keeping
/// read amplification bounded even without a background compactor. The
/// threshold is deterministic in the commit sequence (never load- or
/// thread-dependent), preserving bit-identical outcomes across worker
/// counts.
pub(crate) const INLINE_COMPACT_LEVELS: usize = 32;

/// Occupancy of the tiered run stack, for `/metrics` and the CLI.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// Levels in the stack (1 after a bulk build or compaction).
    pub levels: usize,
    /// Non-empty sorted runs across all levels and permutations.
    pub runs: usize,
    /// Rows resident in memory, summed over runs (adds + tombstones).
    pub mem_rows: usize,
    /// Rows resident in paged files, summed over runs.
    pub disk_rows: usize,
    /// Tombstone rows awaiting compaction (per permutation).
    pub tombstones: usize,
}

impl TierStats {
    /// Approximate bytes of memory-resident index rows (each row is one
    /// `[Id; 3]`; dictionary and per-run bookkeeping not included).
    pub fn mem_bytes(&self) -> u64 {
        (self.mem_rows as u64) * (std::mem::size_of::<[uo_rdf::Id; 3]>() as u64)
    }

    /// Approximate bytes of disk-resident index rows (row payload only;
    /// paged-file headers and page tables not included).
    pub fn disk_bytes(&self) -> u64 {
        (self.disk_rows as u64) * (std::mem::size_of::<[uo_rdf::Id; 3]>() as u64)
    }
}

/// An immutable, fully-indexed version of the dataset. See the module docs.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) dict: Arc<Dictionary>,
    pub(crate) epoch: u64,
    pub(crate) levels: Vec<Arc<Level>>,
    pub(crate) len: usize,
    pub(crate) next_run_id: u64,
    pub(crate) stats: DatasetStats,
}

impl Snapshot {
    /// The empty snapshot at epoch 0.
    pub fn empty() -> Snapshot {
        Snapshot {
            dict: Arc::new(Dictionary::new()),
            epoch: 0,
            levels: Vec::new(),
            len: 0,
            next_run_id: 0,
            stats: DatasetStats::default(),
        }
    }

    /// Bulk-builds a snapshot from unsorted SPO rows: parallel sort + dedup,
    /// then the POS index, the OSP index and the statistics are derived
    /// concurrently. The result is a single level with no tombstones. Every
    /// id in `spo` must be valid in `dict`.
    pub fn build_from(
        dict: Arc<Dictionary>,
        mut spo: Vec<[Id; 3]>,
        epoch: u64,
        par: Parallelism,
    ) -> Snapshot {
        uo_par::sort_unstable(par, &mut spo);
        spo.dedup();
        let (pos, osp, stats) = derive_indexes(&dict, &spo, par);
        let len = spo.len();
        let (levels, next_run_id) = if len == 0 {
            (Vec::new(), 0)
        } else {
            (vec![Arc::new(Level::from_sorted(0, [spo, pos, osp], Default::default()))], 1)
        };
        Snapshot { dict, epoch, levels, len, next_run_id, stats }
    }

    /// The term dictionary of this version.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The shared dictionary handle (cheap to clone).
    pub fn dict_arc(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// This version's epoch. Epochs increase by one per commit; two
    /// snapshots of the same store with equal epochs hold identical data,
    /// which is what the serving layer's plan-cache invalidation keys on.
    /// Compaction rearranges levels without changing the epoch — the
    /// content is identical.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of triples in this version.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if this version holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dataset-wide statistics of this version.
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// Depth of the tiered run stack.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Occupancy of the tiered run stack.
    pub fn tier_stats(&self) -> TierStats {
        let mut t = TierStats { levels: self.levels.len(), ..TierStats::default() };
        for lvl in &self.levels {
            t.tombstones += lvl.del_rows();
            for run in lvl.adds.iter().chain(lvl.dels.iter()) {
                if run.is_empty() {
                    continue;
                }
                t.runs += 1;
                match run {
                    RunData::Mem(v) => t.mem_rows += v.len(),
                    RunData::Disk(d) => t.disk_rows += d.len(),
                }
            }
        }
        t
    }

    /// Aggregated page-cache counters across every paged file this
    /// snapshot references, or `None` for a fully memory-resident
    /// snapshot.
    pub fn page_cache_stats(&self) -> Option<PageCacheSnapshot> {
        let mut seen: Vec<*const PageCacheStats> = Vec::new();
        let mut total = PageCacheSnapshot::default();
        for lvl in &self.levels {
            for run in lvl.adds.iter().chain(lvl.dels.iter()) {
                if let RunData::Disk(d) = run {
                    let ptr = Arc::as_ptr(d.cache_stats());
                    if !seen.contains(&ptr) {
                        seen.push(ptr);
                        total = total + d.cache_stats().snapshot();
                    }
                }
            }
        }
        if seen.is_empty() {
            None
        } else {
            Some(total)
        }
    }

    /// The pattern-to-index plan: which permutation serves a pattern and
    /// with what prefix.
    fn plan(s: Option<Id>, p: Option<Id>, o: Option<Id>) -> (IndexKind, [Id; 3], usize) {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => (IndexKind::Spo, [s, p, o], 3),
            (Some(s), Some(p), None) => (IndexKind::Spo, [s, p, 0], 2),
            (Some(s), None, Some(o)) => (IndexKind::Osp, [o, s, 0], 2),
            (Some(s), None, None) => (IndexKind::Spo, [s, 0, 0], 1),
            (None, Some(p), Some(o)) => (IndexKind::Pos, [p, o, 0], 2),
            (None, Some(p), None) => (IndexKind::Pos, [p, 0, 0], 1),
            (None, None, Some(o)) => (IndexKind::Osp, [o, 0, 0], 1),
            (None, None, None) => (IndexKind::Spo, [0, 0, 0], 0),
        }
    }

    /// Per-level half-open ranges matching `prefix` in permutation `kind`,
    /// keeping only levels whose add or tombstone range is non-empty.
    #[allow(clippy::type_complexity)]
    fn level_ranges(
        &self,
        kind: IndexKind,
        prefix: &[Id],
    ) -> Result<Vec<(&Level, (usize, usize), (usize, usize))>, SnapshotError> {
        let slot = kind.slot();
        let mut hits = Vec::new();
        for lvl in &self.levels {
            let ab = lvl.adds[slot].bounds(prefix)?;
            let db = lvl.dels[slot].bounds(prefix)?;
            if ab.0 < ab.1 || db.0 < db.1 {
                hits.push((lvl.as_ref(), ab, db));
            }
        }
        Ok(hits)
    }

    /// Looks up all triples matching the pattern, where `None` components
    /// are wildcards. Returns a sorted run of one permutation index —
    /// zero-copy when a single in-memory level covers the range, an owned
    /// k-way merge otherwise.
    ///
    /// Panics on storage-layer corruption (an unreadable or CRC-failing
    /// page of a disk-backed snapshot); use
    /// [`try_match_pattern`](Self::try_match_pattern) to handle that case.
    pub fn match_pattern(&self, s: Option<Id>, p: Option<Id>, o: Option<Id>) -> MatchSet<'_> {
        self.try_match_pattern(s, p, o).expect("storage error while reading pattern")
    }

    /// Fallible form of [`match_pattern`](Self::match_pattern): surfaces
    /// page CRC mismatches and I/O failures of disk-backed runs as a clean
    /// [`SnapshotError`] instead of panicking.
    pub fn try_match_pattern(
        &self,
        s: Option<Id>,
        p: Option<Id>,
        o: Option<Id>,
    ) -> Result<MatchSet<'_>, SnapshotError> {
        let (kind, prefix, plen) = Self::plan(s, p, o);
        let prefix = &prefix[..plen];
        // Single-level snapshots (bulk builds, freshly compacted stores) are
        // the common case on the hot BGP-scan path: answer without the
        // per-level range collection, which heap-allocates.
        if let [lvl] = self.levels.as_slice() {
            let slot = kind.slot();
            let (dlo, dhi) = lvl.dels[slot].bounds(prefix)?;
            if dlo == dhi {
                let (lo, hi) = lvl.adds[slot].bounds(prefix)?;
                return match &lvl.adds[slot] {
                    _ if lo == hi => Ok(MatchSet::borrowed(&[], kind)),
                    RunData::Mem(v) => Ok(MatchSet::borrowed(&v[lo..hi], kind)),
                    RunData::Disk(d) => Ok(MatchSet::owned(d.read_range(lo, hi)?, kind)),
                };
            }
        }
        let hits = self.level_ranges(kind, prefix)?;
        match hits.len() {
            0 => Ok(MatchSet::borrowed(&[], kind)),
            1 => {
                // A single level intersects the range. Commit normalization
                // means its tombstones can only shadow rows added by lower
                // levels — which would intersect too — so the range has no
                // tombstones and the add run answers verbatim.
                let (lvl, (lo, hi), (dlo, dhi)) = hits[0];
                debug_assert_eq!(dlo, dhi, "single-level range cannot carry tombstones");
                match &lvl.adds[kind.slot()] {
                    RunData::Mem(v) => Ok(MatchSet::borrowed(&v[lo..hi], kind)),
                    RunData::Disk(d) => Ok(MatchSet::owned(d.read_range(lo, hi)?, kind)),
                }
            }
            _ => {
                let slot = kind.slot();
                let mut adds: Vec<RowsRef<'_>> = Vec::with_capacity(hits.len());
                let mut dels: Vec<RowsRef<'_>> = Vec::new();
                for (lvl, (alo, ahi), (dlo, dhi)) in &hits {
                    if alo < ahi {
                        adds.push(lvl.adds[slot].range(*alo, *ahi)?);
                    }
                    if dlo < dhi {
                        dels.push(lvl.dels[slot].range(*dlo, *dhi)?);
                    }
                }
                let add_refs: Vec<&[[Id; 3]]> = adds.iter().map(|r| r.as_slice()).collect();
                let del_refs: Vec<&[[Id; 3]]> = dels.iter().map(|r| r.as_slice()).collect();
                Ok(MatchSet::owned(uo_par::merge_tiers(&add_refs, &del_refs), kind))
            }
        }
    }

    /// Exact number of triples matching the pattern: per level, the add
    /// range minus the tombstone range, summed — O(levels · log n) binary
    /// searches, no row materialization. Panics on storage corruption;
    /// see [`try_count_pattern`](Self::try_count_pattern).
    pub fn count_pattern(&self, s: Option<Id>, p: Option<Id>, o: Option<Id>) -> usize {
        self.try_count_pattern(s, p, o).expect("storage error while counting pattern")
    }

    /// Fallible form of [`count_pattern`](Self::count_pattern).
    pub fn try_count_pattern(
        &self,
        s: Option<Id>,
        p: Option<Id>,
        o: Option<Id>,
    ) -> Result<usize, SnapshotError> {
        let (kind, prefix, plen) = Self::plan(s, p, o);
        let prefix = &prefix[..plen];
        if let [lvl] = self.levels.as_slice() {
            let slot = kind.slot();
            let (alo, ahi) = lvl.adds[slot].bounds(prefix)?;
            let (dlo, dhi) = lvl.dels[slot].bounds(prefix)?;
            return Ok((ahi - alo).saturating_sub(dhi - dlo));
        }
        let hits = self.level_ranges(kind, prefix)?;
        let mut n = 0i64;
        for (_, (alo, ahi), (dlo, dhi)) in hits {
            n += (ahi - alo) as i64 - (dhi - dlo) as i64;
        }
        debug_assert!(n >= 0, "tombstones cannot outnumber adds in a range");
        Ok(n.max(0) as usize)
    }

    /// Returns `true` if the fully-bound triple is in this version.
    pub fn contains(&self, t: Triple) -> bool {
        self.count_pattern(Some(t.subject), Some(t.predicate), Some(t.object)) > 0
    }

    /// The objects of all triples `(s, p, ·)`, in sorted order.
    pub fn objects(&self, s: Id, p: Id) -> impl Iterator<Item = Id> + '_ {
        self.match_pattern(Some(s), Some(p), None).into_rows().into_iter().map(|r| r[2])
    }

    /// The subjects of all triples `(·, p, o)`, in sorted order.
    pub fn subjects(&self, p: Id, o: Id) -> impl Iterator<Item = Id> + '_ {
        self.match_pattern(None, Some(p), Some(o)).into_rows().into_iter().map(|r| r[2])
    }

    /// Iterates over every triple in SPO order (materializes the merged
    /// view once).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.match_pattern(None, None, None).into_rows().into_iter().map(Triple::from)
    }

    /// Folds the whole level stack into a single memory-resident level:
    /// same content, same epoch, zero tombstones. The merge resolves adds
    /// against tombstones by occurrence counting, so the result depends
    /// only on the content — not on worker count or level enumeration
    /// order — preserving the determinism contract. Disk-backed runs are
    /// materialized; fails cleanly if one is unreadable.
    pub fn compact_with(&self, par: Parallelism) -> Result<Snapshot, SnapshotError> {
        if self.levels.len() <= 1 && self.levels.iter().all(|l| l.del_rows() == 0 && !l.is_disk()) {
            return Ok(self.clone());
        }
        let gather = |slot: usize| -> Result<Vec<[Id; 3]>, SnapshotError> {
            let mut adds: Vec<RowsRef<'_>> = Vec::with_capacity(self.levels.len());
            let mut dels: Vec<RowsRef<'_>> = Vec::new();
            for lvl in &self.levels {
                if !lvl.adds[slot].is_empty() {
                    adds.push(lvl.adds[slot].rows()?);
                }
                if !lvl.dels[slot].is_empty() {
                    dels.push(lvl.dels[slot].rows()?);
                }
            }
            let add_refs: Vec<&[[Id; 3]]> = adds.iter().map(|r| r.as_slice()).collect();
            let del_refs: Vec<&[[Id; 3]]> = dels.iter().map(|r| r.as_slice()).collect();
            Ok(uo_par::merge_tiers(&add_refs, &del_refs))
        };
        let (spo, pos, osp) = uo_par::join3(par, || gather(0), || gather(1), || gather(2));
        let (spo, pos, osp) = (spo?, pos?, osp?);
        debug_assert_eq!(spo.len(), self.len, "compaction must preserve the live row count");
        let (levels, next_run_id) = if spo.is_empty() {
            (Vec::new(), self.next_run_id)
        } else {
            (
                vec![Arc::new(Level::from_sorted(
                    self.next_run_id,
                    [spo, pos, osp],
                    Default::default(),
                ))],
                self.next_run_id + 1,
            )
        };
        Ok(Snapshot {
            dict: Arc::clone(&self.dict),
            epoch: self.epoch,
            levels,
            len: self.len,
            next_run_id,
            stats: self.stats.clone(),
        })
    }
}

/// Derives the POS index, the OSP index and the statistics from a sorted,
/// deduplicated SPO index — the three jobs run concurrently.
pub(crate) fn derive_indexes(
    dict: &Dictionary,
    spo: &[[Id; 3]],
    par: Parallelism,
) -> (Vec<[Id; 3]>, Vec<[Id; 3]>, DatasetStats) {
    uo_par::join3(
        par,
        || {
            let mut v: Vec<[Id; 3]> = spo.iter().map(|&t| IndexKind::Pos.from_spo(t)).collect();
            v.sort_unstable();
            v
        },
        || {
            let mut v: Vec<[Id; 3]> = spo.iter().map(|&t| IndexKind::Osp.from_spo(t)).collect();
            v.sort_unstable();
            v
        },
        || DatasetStats::compute(dict, spo),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_rdf::Term;

    fn sample() -> Snapshot {
        let mut dict = Dictionary::new();
        let a = dict.encode(&Term::iri("http://a"));
        let b = dict.encode(&Term::iri("http://b"));
        let p = dict.encode(&Term::iri("http://p"));
        let q = dict.encode(&Term::iri("http://q"));
        let spo = vec![[a, p, b], [b, p, a], [a, q, a], [a, p, b]];
        Snapshot::build_from(Arc::new(dict), spo, 7, Parallelism::sequential())
    }

    #[test]
    fn build_from_sorts_and_dedups() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.level_count(), 1);
        let rows: Vec<[Id; 3]> = s.iter().map(|t| t.as_array()).collect();
        assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }

    #[test]
    fn empty_snapshot_is_epoch_zero() {
        let s = Snapshot::empty();
        assert_eq!(s.epoch(), 0);
        assert!(s.is_empty());
        assert_eq!(s.level_count(), 0);
        assert_eq!(s.count_pattern(None, None, None), 0);
        assert!(s.page_cache_stats().is_none());
    }

    #[test]
    fn pattern_shapes_answer_from_permutations() {
        let s = sample();
        let a = s.dictionary().lookup(&Term::iri("http://a")).unwrap();
        let p = s.dictionary().lookup(&Term::iri("http://p")).unwrap();
        assert_eq!(s.count_pattern(Some(a), None, None), 2);
        assert_eq!(s.count_pattern(None, Some(p), None), 2);
        assert_eq!(s.count_pattern(None, None, Some(a)), 2);
        assert_eq!(s.objects(a, p).count(), 1);
        assert_eq!(s.subjects(p, a).count(), 1);
    }

    #[test]
    fn compaction_preserves_content_and_epoch() {
        let s = sample();
        let c = s.compact_with(Parallelism::sequential()).unwrap();
        assert_eq!(c.epoch(), s.epoch());
        assert_eq!(c.len(), s.len());
        assert_eq!(c.level_count(), 1);
        assert!(s.iter().eq(c.iter()));
        assert_eq!(c.tier_stats().tombstones, 0);
    }

    #[test]
    fn tier_stats_reflect_single_level() {
        let s = sample();
        let t = s.tier_stats();
        assert_eq!(t.levels, 1);
        assert_eq!(t.runs, 3, "three add permutations, no tombstones");
        assert_eq!(t.mem_rows, 3 * s.len());
        assert_eq!(t.disk_rows, 0);
    }
}
