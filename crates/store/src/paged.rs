//! The paged **UOST v3** container: page-aligned, CRC-checked, lazily
//! loadable snapshot and run files.
//!
//! A v3 file is a sequence of 4 KiB pages. Page 0 is the header (magic,
//! version, page size, container kind); data pages follow; after the last
//! data page comes a variable-length **footer** (dictionary descriptor,
//! statistics, the level table with per-page first-row indexes, and the
//! page table with one CRC32 per data page); the file ends with a fixed
//! 24-byte trailer locating the footer. The full byte-level layout is
//! specified in `docs/FORMAT.md`.
//!
//! Two container kinds share the layout:
//!
//! - **snapshot** (`kind = 0`): a whole [`Snapshot`] — dictionary,
//!   statistics, and every level of the tier stack. Written by
//!   `save_to_file`.
//! - **run** (`kind = 1`): a single level, no dictionary or statistics.
//!   Written by incremental checkpoints as `runs/run-<id>.uorun`.
//!
//! Opening a container is lazy: only the header, footer, and dictionary
//! pages are read eagerly. Triple rows stay on disk until a query touches
//! them; pages are fetched with `pread`, CRC-verified once, and kept in a
//! per-file LRU cache with a byte budget — the layout is mmap-friendly
//! (page-aligned, position-independent) but the implementation reads
//! explicitly so cache pressure is observable and bounded.

use crate::persist::{read_term, write_term, SnapshotError};
use crate::runs::{Level, RunData};
use crate::stats::{DatasetStats, PredicateStats};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uo_rdf::{Dictionary, FxHashMap, Id};
use uo_wal::crc32;

/// Size of every page in a v3 container.
pub(crate) const PAGE_SIZE: usize = 4096;
/// Bytes per encoded triple row (three little-endian u32 ids).
pub(crate) const ROW_BYTES: usize = 12;
/// Rows per data page; rows never span a page boundary.
pub(crate) const ROWS_PER_PAGE: usize = PAGE_SIZE / ROW_BYTES;

const MAGIC: &[u8; 4] = b"UOST";
const FOOTER_MAGIC: &[u8; 4] = b"UOFT";
const VERSION: u32 = 3;
const TRAILER_LEN: usize = 24;

/// Container kind: a full snapshot (dictionary + statistics + levels).
pub(crate) const KIND_SNAPSHOT: u32 = 0;
/// Container kind: a single level, as written by incremental checkpoints.
pub(crate) const KIND_RUN: u32 = 1;

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Tuning knobs for opening paged files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedOptions {
    /// Byte budget of the per-file page cache. Pages are evicted LRU once
    /// the cached payload bytes exceed this; at least one page is always
    /// retained so progress is guaranteed under any budget.
    pub cache_bytes: usize,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions { cache_bytes: 64 << 20 }
    }
}

/// Shared page-cache counters, aggregated across every paged file of one
/// store and surfaced through `/metrics`.
#[derive(Debug, Default)]
pub struct PageCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PageCacheStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PageCacheSnapshot {
        PageCacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a page cache's hit/miss/eviction counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PageCacheSnapshot {
    /// Page reads served from the cache.
    pub hits: u64,
    /// Page reads that went to storage (and were CRC-verified).
    pub misses: u64,
    /// Pages evicted to stay within the byte budget.
    pub evictions: u64,
}

impl std::ops::Add for PageCacheSnapshot {
    type Output = PageCacheSnapshot;
    fn add(self, rhs: PageCacheSnapshot) -> PageCacheSnapshot {
        PageCacheSnapshot {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

/// Where a paged container's bytes live.
pub(crate) enum Backing {
    /// A file on disk, read with positioned reads.
    File(std::fs::File),
    /// An in-memory byte image (streamed `read_snapshot` input, tests).
    Mem(Vec<u8>),
}

impl Backing {
    fn size(&self) -> io::Result<u64> {
        match self {
            Backing::File(f) => Ok(f.metadata()?.len()),
            Backing::Mem(v) => Ok(v.len() as u64),
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        match self {
            Backing::File(f) => {
                use std::os::unix::fs::FileExt;
                f.read_exact_at(buf, off)
            }
            Backing::Mem(v) => {
                let lo = off as usize;
                let hi = lo.checked_add(buf.len()).filter(|&h| h <= v.len()).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "read past end of buffer")
                })?;
                buf.copy_from_slice(&v[lo..hi]);
                Ok(())
            }
        }
    }
}

struct CacheEntry {
    last_use: u64,
    data: Arc<Vec<u8>>,
}

struct PageCache {
    map: FxHashMap<u32, CacheEntry>,
    bytes: usize,
    tick: u64,
}

/// An open v3 container: validated page table plus a bounded LRU page
/// cache. Cloning is by `Arc`; every [`DiskRun`] of the file shares it.
pub(crate) struct PagedFile {
    backing: Backing,
    /// Per data page: (crc32 of payload, payload length). Index 0 is page 1.
    pages: Vec<(u32, u32)>,
    cache: Mutex<PageCache>,
    stats: Arc<PageCacheStats>,
    budget: usize,
}

impl fmt::Debug for PagedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedFile")
            .field("pages", &self.pages.len())
            .field("budget", &self.budget)
            .finish()
    }
}

impl PagedFile {
    /// Reads one data page (1-based index), CRC-verifying on a cache miss.
    fn read_page(&self, page: u32) -> Result<Arc<Vec<u8>>, SnapshotError> {
        let (crc, payload_len) = *self
            .pages
            .get((page as usize).wrapping_sub(1))
            .ok_or_else(|| corrupt(format!("page {page} out of range")))?;
        let mut cache = self.cache.lock().expect("page cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(e) = cache.map.get_mut(&page) {
            e.last_use = tick;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&e.data));
        }
        let mut buf = vec![0u8; payload_len as usize];
        self.backing.read_exact_at(&mut buf, page as u64 * PAGE_SIZE as u64)?;
        if crc32(&buf) != crc {
            return Err(corrupt(format!("page {page}: crc mismatch")));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(buf);
        cache.bytes += payload_len as usize;
        cache.map.insert(page, CacheEntry { last_use: tick, data: Arc::clone(&data) });
        while cache.bytes > self.budget && cache.map.len() > 1 {
            let oldest = *cache
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k)
                .expect("nonempty");
            if let Some(e) = cache.map.remove(&oldest) {
                cache.bytes -= e.data.len();
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(data)
    }

    /// Reads `len` bytes of a byte section starting at `first_page`
    /// (sections span pages contiguously).
    fn read_bytes(&self, first_page: u32, len: u64) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::with_capacity(len as usize);
        let mut page = first_page;
        while (out.len() as u64) < len {
            let data = self.read_page(page)?;
            let take = ((len - out.len() as u64) as usize).min(data.len());
            out.extend_from_slice(&data[..take]);
            if take < data.len() && (out.len() as u64) < len {
                return Err(corrupt("byte section ends before its declared length"));
            }
            page += 1;
        }
        Ok(out)
    }
}

/// One sorted run inside a [`PagedFile`]: a section descriptor plus the
/// in-memory first-row-per-page index that makes binary search possible
/// without touching the pages themselves.
#[derive(Clone)]
pub(crate) struct DiskRun {
    file: Arc<PagedFile>,
    first_page: u32,
    rows: usize,
    first_rows: Arc<Vec<[Id; 3]>>,
}

impl fmt::Debug for DiskRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskRun")
            .field("first_page", &self.first_page)
            .field("rows", &self.rows)
            .finish()
    }
}

impl DiskRun {
    pub(crate) fn len(&self) -> usize {
        self.rows
    }

    /// The shared cache counters of the backing file.
    pub(crate) fn cache_stats(&self) -> &Arc<PageCacheStats> {
        &self.file.stats
    }

    /// Decodes the rows of the `k`-th page of this section.
    fn page_rows(&self, k: usize) -> Result<Vec<[Id; 3]>, SnapshotError> {
        let expect = ROWS_PER_PAGE.min(self.rows - k * ROWS_PER_PAGE);
        let data = self.file.read_page(self.first_page + k as u32)?;
        if data.len() != expect * ROW_BYTES {
            return Err(corrupt(format!(
                "row page {} holds {} bytes, expected {} rows",
                self.first_page as usize + k,
                data.len(),
                expect
            )));
        }
        Ok(data
            .chunks_exact(ROW_BYTES)
            .map(|c| {
                [
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..8].try_into().unwrap()),
                    u32::from_le_bytes(c[8..12].try_into().unwrap()),
                ]
            })
            .collect())
    }

    /// Global row index of the first row **not** satisfying `pred`, where
    /// `pred` is monotone (true then false) over the sorted run. Reads at
    /// most one page.
    fn partition(&self, pred: impl Fn(&[Id; 3]) -> bool) -> Result<usize, SnapshotError> {
        let p = self.first_rows.partition_point(|r| pred(r));
        if p == 0 {
            return Ok(0);
        }
        let page = p - 1;
        let rows = self.page_rows(page)?;
        Ok(page * ROWS_PER_PAGE + rows.partition_point(|r| pred(r)))
    }

    /// Half-open range of rows starting with `prefix` — binary search over
    /// the first-row index, refined inside the two boundary pages.
    pub(crate) fn bounds(&self, prefix: &[Id]) -> Result<(usize, usize), SnapshotError> {
        if prefix.is_empty() {
            return Ok((0, self.rows));
        }
        let k = prefix.len();
        let lo = self.partition(|row| row[..k] < *prefix)?;
        let hi = self.partition(|row| row[..k] <= *prefix)?;
        Ok((lo, hi))
    }

    /// Materializes rows `[lo, hi)`, reading only the touched pages.
    pub(crate) fn read_range(&self, lo: usize, hi: usize) -> Result<Vec<[Id; 3]>, SnapshotError> {
        debug_assert!(lo <= hi && hi <= self.rows);
        if lo >= hi {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(hi - lo);
        for k in (lo / ROWS_PER_PAGE)..=((hi - 1) / ROWS_PER_PAGE) {
            let rows = self.page_rows(k)?;
            let base = k * ROWS_PER_PAGE;
            let a = lo.saturating_sub(base);
            let b = (hi - base).min(rows.len());
            out.extend_from_slice(&rows[a..b]);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct PageWriter<W: Write> {
    w: W,
    page: Vec<u8>,
    pages: Vec<(u32, u32)>,
}

impl<W: Write> PageWriter<W> {
    fn new(mut w: W, kind: u32) -> io::Result<PageWriter<W>> {
        let mut hdr = vec![0u8; PAGE_SIZE];
        hdr[0..4].copy_from_slice(MAGIC);
        hdr[4..8].copy_from_slice(&VERSION.to_le_bytes());
        hdr[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        hdr[12..16].copy_from_slice(&kind.to_le_bytes());
        w.write_all(&hdr)?;
        Ok(PageWriter { w, page: Vec::with_capacity(PAGE_SIZE), pages: Vec::new() })
    }

    /// Index the next written byte's page will get.
    fn next_page(&self) -> u32 {
        (1 + self.pages.len()) as u32
    }

    /// Pads the current page to [`PAGE_SIZE`] and writes it out. CRC covers
    /// the payload only (padding excluded).
    fn flush_page(&mut self) -> io::Result<()> {
        if self.page.is_empty() {
            return Ok(());
        }
        self.pages.push((crc32(&self.page), self.page.len() as u32));
        self.page.resize(PAGE_SIZE, 0);
        self.w.write_all(&self.page)?;
        self.page.clear();
        Ok(())
    }

    fn push_bytes(&mut self, mut b: &[u8]) -> io::Result<()> {
        while !b.is_empty() {
            let take = (PAGE_SIZE - self.page.len()).min(b.len());
            self.page.extend_from_slice(&b[..take]);
            b = &b[take..];
            if self.page.len() == PAGE_SIZE {
                self.flush_page()?;
            }
        }
        Ok(())
    }

    fn push_row(&mut self, row: [Id; 3]) -> io::Result<()> {
        if self.page.len() + ROW_BYTES > PAGE_SIZE {
            self.flush_page()?;
        }
        for c in row {
            self.page.extend_from_slice(&c.to_le_bytes());
        }
        Ok(())
    }
}

/// Everything a v3 container records besides its pages.
pub(crate) struct ContainerMeta<'a> {
    pub(crate) kind: u32,
    pub(crate) epoch: u64,
    pub(crate) len: u64,
    pub(crate) next_run_id: u64,
    pub(crate) dict: Option<&'a Dictionary>,
    pub(crate) stats: Option<&'a DatasetStats>,
    pub(crate) levels: &'a [Arc<Level>],
}

/// Serializes the dictionary section: term count, then the tagged term
/// records of the v2 format.
pub(crate) fn encode_dict(dict: &Dictionary) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    for (_, term) in dict.iter() {
        write_term(&mut out, term).expect("writing to a Vec cannot fail");
    }
    out
}

/// Parses a dictionary section, validating the id sequence.
pub(crate) fn decode_dict(bytes: &[u8]) -> Result<Dictionary, SnapshotError> {
    let mut r: &[u8] = bytes;
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    let n_terms = u32::from_le_bytes(b) as usize;
    let mut dict = Dictionary::new();
    for i in 0..n_terms {
        let term = read_term(&mut r)?;
        let id = dict.encode(&term);
        if id as usize != i + 1 {
            return Err(corrupt("duplicate term in dictionary section"));
        }
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after dictionary section"));
    }
    Ok(dict)
}

/// Serializes the statistics block (predicates sorted by id so the byte
/// image is deterministic).
pub(crate) fn encode_stats(stats: &DatasetStats, out: &mut Vec<u8>) {
    out.extend_from_slice(&(stats.triples as u64).to_le_bytes());
    out.extend_from_slice(&(stats.entities as u64).to_le_bytes());
    out.extend_from_slice(&(stats.literals as u64).to_le_bytes());
    let mut preds: Vec<(&Id, &PredicateStats)> = stats.per_predicate.iter().collect();
    preds.sort_by_key(|(p, _)| **p);
    out.extend_from_slice(&(preds.len() as u32).to_le_bytes());
    for (p, ps) in preds {
        out.extend_from_slice(&p.to_le_bytes());
        out.extend_from_slice(&(ps.count as u64).to_le_bytes());
        out.extend_from_slice(&(ps.distinct_subjects as u64).to_le_bytes());
        out.extend_from_slice(&(ps.distinct_objects as u64).to_le_bytes());
    }
}

/// Parses a statistics block written by [`encode_stats`].
pub(crate) fn decode_stats(cur: &mut Cursor<'_>) -> Result<DatasetStats, SnapshotError> {
    let triples = cur.u64()? as usize;
    let entities = cur.u64()? as usize;
    let literals = cur.u64()? as usize;
    let n = cur.u32()? as usize;
    if n > 1 << 26 {
        return Err(corrupt("predicate count out of range"));
    }
    let mut per_predicate: FxHashMap<Id, PredicateStats> = FxHashMap::default();
    for _ in 0..n {
        let p = cur.u32()?;
        let ps = PredicateStats {
            count: cur.u64()? as usize,
            distinct_subjects: cur.u64()? as usize,
            distinct_objects: cur.u64()? as usize,
        };
        per_predicate.insert(p, ps);
    }
    Ok(DatasetStats { triples, entities, predicates: per_predicate.len(), literals, per_predicate })
}

/// Writes a complete v3 container to `w`. Disk-backed source runs are
/// streamed through their page reader; memory runs are written directly.
pub(crate) fn write_container<W: Write>(
    mut w: W,
    meta: &ContainerMeta,
) -> Result<(), SnapshotError> {
    let mut pw = PageWriter::new(&mut w, meta.kind)?;

    let (dict_first_page, dict_len, term_count) = match meta.dict {
        Some(d) => {
            let bytes = encode_dict(d);
            let fp = pw.next_page();
            pw.push_bytes(&bytes)?;
            pw.flush_page()?;
            (fp, bytes.len() as u64, d.len() as u32)
        }
        None => (0u32, 0u64, 0u32),
    };

    struct Sec {
        first_page: u32,
        rows: u64,
        first_rows: Vec<[Id; 3]>,
    }
    let mut levels_out: Vec<(u64, Vec<Sec>)> = Vec::with_capacity(meta.levels.len());
    for level in meta.levels {
        let mut secs = Vec::with_capacity(6);
        for run in level.adds.iter().chain(level.dels.iter()) {
            pw.flush_page()?;
            let first_page = pw.next_page();
            let rows = run.rows()?;
            let rows = rows.as_slice();
            let mut first_rows = Vec::with_capacity(rows.len().div_ceil(ROWS_PER_PAGE));
            for (i, &row) in rows.iter().enumerate() {
                if i % ROWS_PER_PAGE == 0 {
                    first_rows.push(row);
                }
                pw.push_row(row)?;
            }
            secs.push(Sec { first_page, rows: rows.len() as u64, first_rows });
        }
        levels_out.push((level.id, secs));
    }
    pw.flush_page()?;

    let mut f = Vec::new();
    f.extend_from_slice(&meta.epoch.to_le_bytes());
    f.extend_from_slice(&meta.len.to_le_bytes());
    f.extend_from_slice(&meta.next_run_id.to_le_bytes());
    f.extend_from_slice(&term_count.to_le_bytes());
    f.extend_from_slice(&dict_first_page.to_le_bytes());
    f.extend_from_slice(&dict_len.to_le_bytes());
    let default_stats = DatasetStats::default();
    encode_stats(meta.stats.unwrap_or(&default_stats), &mut f);
    f.extend_from_slice(&(levels_out.len() as u32).to_le_bytes());
    for (id, secs) in &levels_out {
        f.extend_from_slice(&id.to_le_bytes());
        for s in secs {
            f.extend_from_slice(&s.rows.to_le_bytes());
            f.extend_from_slice(&s.first_page.to_le_bytes());
            for row in &s.first_rows {
                for c in row {
                    f.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    let pages = std::mem::take(&mut pw.pages);
    drop(pw);
    f.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    for (crc, len) in &pages {
        f.extend_from_slice(&crc.to_le_bytes());
        f.extend_from_slice(&len.to_le_bytes());
    }

    let footer_off = (1 + pages.len()) as u64 * PAGE_SIZE as u64;
    let footer_crc = crc32(&f);
    w.write_all(&f)?;
    w.write_all(&footer_off.to_le_bytes())?;
    w.write_all(&(f.len() as u64).to_le_bytes())?;
    w.write_all(&footer_crc.to_le_bytes())?;
    w.write_all(FOOTER_MAGIC)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A byte cursor over the footer blob.
pub(crate) struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Cursor<'a> {
        Cursor { b, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.b.len());
        let Some(end) = end else {
            return Err(corrupt("footer truncated"));
        };
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.b.len()
    }
}

/// A parsed v3 container with lazily-loadable levels.
pub(crate) struct Container {
    pub(crate) kind: u32,
    pub(crate) epoch: u64,
    pub(crate) len: u64,
    pub(crate) next_run_id: u64,
    pub(crate) dict: Option<Dictionary>,
    pub(crate) stats: DatasetStats,
    pub(crate) levels: Vec<Arc<Level>>,
}

/// Opens a container: reads header, trailer, footer, and the dictionary
/// pages; rows stay on disk behind [`DiskRun`]s sharing one page cache.
pub(crate) fn open_container(
    backing: Backing,
    opts: PagedOptions,
    cache_stats: Arc<PageCacheStats>,
) -> Result<Container, SnapshotError> {
    let size = backing.size()?;
    if size < (PAGE_SIZE + TRAILER_LEN) as u64 {
        return Err(corrupt("file too small for a v3 container"));
    }
    let mut hdr = [0u8; 16];
    backing.read_exact_at(&mut hdr, 0)?;
    if &hdr[0..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let page_size = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
    if page_size as usize != PAGE_SIZE {
        return Err(corrupt(format!("unsupported page size {page_size}")));
    }
    let kind = u32::from_le_bytes(hdr[12..16].try_into().unwrap());

    let mut trailer = [0u8; TRAILER_LEN];
    backing.read_exact_at(&mut trailer, size - TRAILER_LEN as u64)?;
    if &trailer[20..24] != FOOTER_MAGIC {
        return Err(corrupt("bad footer magic"));
    }
    let footer_off = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let footer_len = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    let footer_crc = u32::from_le_bytes(trailer[16..20].try_into().unwrap());
    if footer_off
        .checked_add(footer_len)
        .map(|end| end + TRAILER_LEN as u64 != size)
        .unwrap_or(true)
    {
        return Err(corrupt("footer location inconsistent with file size"));
    }
    let mut footer = vec![0u8; footer_len as usize];
    backing.read_exact_at(&mut footer, footer_off)?;
    if crc32(&footer) != footer_crc {
        return Err(corrupt("footer crc mismatch"));
    }

    let mut cur = Cursor::new(&footer);
    let epoch = cur.u64()?;
    let len = cur.u64()?;
    let next_run_id = cur.u64()?;
    let term_count = cur.u32()?;
    let dict_first_page = cur.u32()?;
    let dict_len = cur.u64()?;
    let stats = decode_stats(&mut cur)?;
    let level_count = cur.u32()? as usize;
    if level_count > 1 << 20 {
        return Err(corrupt("level count out of range"));
    }
    struct SecDesc {
        rows: u64,
        first_page: u32,
        first_rows: Vec<[Id; 3]>,
    }
    let mut level_descs: Vec<(u64, Vec<SecDesc>)> = Vec::with_capacity(level_count);
    for _ in 0..level_count {
        let id = cur.u64()?;
        let mut secs = Vec::with_capacity(6);
        for _ in 0..6 {
            let rows = cur.u64()?;
            let first_page = cur.u32()?;
            let n_pages = (rows as usize).div_ceil(ROWS_PER_PAGE);
            let raw = cur.take(n_pages * ROW_BYTES)?;
            let first_rows = raw
                .chunks_exact(ROW_BYTES)
                .map(|c| {
                    [
                        u32::from_le_bytes(c[0..4].try_into().unwrap()),
                        u32::from_le_bytes(c[4..8].try_into().unwrap()),
                        u32::from_le_bytes(c[8..12].try_into().unwrap()),
                    ]
                })
                .collect();
            secs.push(SecDesc { rows, first_page, first_rows });
        }
        level_descs.push((id, secs));
    }
    let page_count = cur.u32()? as usize;
    let mut pages = Vec::with_capacity(page_count);
    for _ in 0..page_count {
        let crc = cur.u32()?;
        let plen = cur.u32()?;
        if plen as usize > PAGE_SIZE {
            return Err(corrupt("page payload larger than a page"));
        }
        pages.push((crc, plen));
    }
    if !cur.is_done() {
        return Err(corrupt("trailing bytes after footer"));
    }
    if footer_off != (1 + page_count) as u64 * PAGE_SIZE as u64 {
        return Err(corrupt("page table inconsistent with footer offset"));
    }

    let file = Arc::new(PagedFile {
        backing,
        pages,
        cache: Mutex::new(PageCache { map: FxHashMap::default(), bytes: 0, tick: 0 }),
        stats: cache_stats,
        budget: opts.cache_bytes.max(1),
    });

    let dict = if term_count > 0 || dict_len > 0 {
        let bytes = file.read_bytes(dict_first_page, dict_len)?;
        let dict = decode_dict(&bytes)?;
        if dict.len() as u32 != term_count {
            return Err(corrupt("dictionary term count mismatch"));
        }
        Some(dict)
    } else {
        None
    };

    let mut levels = Vec::with_capacity(level_descs.len());
    for (id, secs) in level_descs {
        let mut runs: Vec<RunData> = Vec::with_capacity(6);
        for s in secs {
            if s.rows == 0 {
                runs.push(RunData::Mem(Vec::new()));
            } else {
                if s.first_page as usize + (s.rows as usize).div_ceil(ROWS_PER_PAGE)
                    > 1 + file.pages.len()
                {
                    return Err(corrupt("run section points past the page table"));
                }
                runs.push(RunData::Disk(DiskRun {
                    file: Arc::clone(&file),
                    first_page: s.first_page,
                    rows: s.rows as usize,
                    first_rows: Arc::new(s.first_rows),
                }));
            }
        }
        let mut it = runs.into_iter();
        let mut next = || it.next().expect("exactly six sections per level");
        let adds = [next(), next(), next()];
        let dels = [next(), next(), next()];
        levels.push(Arc::new(Level { id, adds, dels }));
    }

    // Cross-check the live-row count against the level table.
    let computed: i64 = levels.iter().map(|l| l.add_rows() as i64 - l.del_rows() as i64).sum();
    if kind == KIND_SNAPSHOT && computed != len as i64 {
        return Err(corrupt("live row count inconsistent with level table"));
    }

    Ok(Container { kind, epoch, len, next_run_id, dict, stats, levels })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_per_page_fits() {
        assert_eq!(ROWS_PER_PAGE, 341);
        const { assert!(ROWS_PER_PAGE * ROW_BYTES <= PAGE_SIZE) }
    }

    #[test]
    fn cursor_rejects_truncation() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert!(cur.u32().is_err());
        let mut cur = Cursor::new(&[1, 2, 3, 4]);
        assert_eq!(cur.u32().unwrap(), u32::from_le_bytes([1, 2, 3, 4]));
        assert!(cur.is_done());
    }
}
