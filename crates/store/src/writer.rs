//! The [`StoreWriter`]: mutation endpoint of the MVCC store.
//!
//! A writer buffers inserts and deletes in a small delta and publishes them
//! with [`commit`](StoreWriter::commit), which produces a **new**
//! [`Snapshot`] by appending one small sorted **level** to the base's
//! tiered run stack. A commit of K triples sorts and writes only the K
//! delta rows (per permutation) — O(K log K) total, independent of the
//! N base rows, which stay untouched behind shared `Arc`s. The
//! [`CommitStats`] of every commit record exactly that contract, which the
//! test suite asserts on. The level stack is kept bounded by background
//! compaction (the server's maintenance thread) plus a deterministic
//! inline compaction once the stack reaches a hard cap.
//!
//! Readers are completely undisturbed: anyone holding an `Arc<Snapshot>`
//! keeps answering from it; a commit only swaps which snapshot *future*
//! readers pick up. One writer at a time per lineage is the caller's
//! contract (the HTTP server serializes writers behind a mutex).
//!
//! The dictionary is shared with the base snapshot via `Arc` and cloned
//! lazily (copy-on-write) the first time a commit cycle encounters a term
//! the base does not know; delta-only commits and commits over known terms
//! reuse the base dictionary allocation outright.

use crate::index::IndexKind;
use crate::runs::Level;
use crate::snapshot::{derive_indexes, Snapshot, INLINE_COMPACT_LEVELS};
use std::sync::Arc;
use uo_obs::Tracer;
use uo_par::Parallelism;
use uo_rdf::{ntriples, Dictionary, FxHashSet, Id, Term, Triple};

/// What one [`StoreWriter::commit`] did — the observability hook for the
/// "append a level, don't rewrite the base" contract.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// Epoch of the snapshot the commit produced.
    pub epoch: u64,
    /// Distinct delta insertions folded in.
    pub delta_inserts: usize,
    /// Distinct delta deletions folded in.
    pub delta_deletes: usize,
    /// Rows that went through a sort: delta rows only, once per permutation
    /// index. A commit of K triples sorts at most `3 * (inserts + deletes)`
    /// rows regardless of the base size.
    pub rows_sorted: usize,
    /// Rows written into the new level across the three permutation
    /// indexes — proportional to the **delta**, never to the base. (Before
    /// the tiered refactor this counted the N base rows every commit
    /// re-merged; it is now O(K) by construction.)
    pub rows_merged: usize,
    /// Rows rewritten by an inline full compaction this commit triggered
    /// (0 for ordinary commits; fires only when the level stack hits its
    /// deterministic depth cap).
    pub compaction_rows: usize,
    /// Depth of the level stack after the commit.
    pub levels: usize,
    /// True when the commit reused the base snapshot's dictionary
    /// allocation (no unknown term was encoded this cycle).
    pub dict_reused: bool,
}

/// A mutation buffer over a base [`Snapshot`]. See the module docs.
///
/// The pending delta is a pair of hash sets (row → present exactly once),
/// so buffering an operation is O(1) — including the cancellation of an
/// opposing pending op — and mixed insert/delete batches stay linear.
#[derive(Debug, Clone)]
pub struct StoreWriter {
    base: Arc<Snapshot>,
    dict: Arc<Dictionary>,
    inserts: FxHashSet<[Id; 3]>,
    deletes: FxHashSet<[Id; 3]>,
    last_commit: CommitStats,
    total_rows_sorted: usize,
    total_rows_merged: usize,
    /// Span recorder for the commit pipeline (off by default — see
    /// [`set_tracer`](StoreWriter::set_tracer)).
    tracer: Tracer,
    /// Parent span id for the next commit's `delta_merge` span (0 = root;
    /// the server's update handler points this at its request span while
    /// it holds the writer lock).
    trace_parent: u64,
}

impl StoreWriter {
    /// A writer over the empty dataset (epoch 0).
    pub fn new() -> StoreWriter {
        StoreWriter::from_snapshot(Arc::new(Snapshot::empty()))
    }

    /// A writer whose first commit will extend `base`. Cheap: the dictionary
    /// and indexes stay shared until a commit actually changes them.
    pub fn from_snapshot(base: Arc<Snapshot>) -> StoreWriter {
        let dict = Arc::clone(base.dict_arc());
        StoreWriter {
            base,
            dict,
            inserts: FxHashSet::default(),
            deletes: FxHashSet::default(),
            last_commit: CommitStats::default(),
            total_rows_sorted: 0,
            total_rows_merged: 0,
            tracer: Tracer::off(),
            trace_parent: 0,
        }
    }

    /// Installs a span recorder: every subsequent commit records a
    /// `delta_merge` span (category `commit`) carrying the new epoch and
    /// the delta-merge accounting. With the default [`Tracer::off`] the
    /// commit path pays a single branch.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets the parent span id of the next commits' `delta_merge` spans
    /// (0 for a root). Callers serialize writers, so pointing this at the
    /// in-flight request's span just before running the update is
    /// race-free.
    pub fn set_trace_parent(&mut self, parent: u64) {
        self.trace_parent = parent;
    }

    /// The latest committed snapshot (the base of the pending delta).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.base)
    }

    /// The working dictionary: the base snapshot's terms plus any terms
    /// encoded by pending (uncommitted) insertions.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of pending (uncommitted) insertions.
    pub fn pending_inserts(&self) -> usize {
        self.inserts.len()
    }

    /// Number of pending (uncommitted) deletions.
    pub fn pending_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Statistics of the most recent commit.
    pub fn last_commit(&self) -> CommitStats {
        self.last_commit
    }

    /// Cumulative `(rows_sorted, rows_merged)` across every commit this
    /// writer has performed — the observability hook for proving that a
    /// whole *sequence* of commits (e.g. a WAL recovery replay) stayed on
    /// the O(K)-per-commit level-append path instead of rewriting the base.
    pub fn merge_totals(&self) -> (usize, usize) {
        (self.total_rows_sorted, self.total_rows_merged)
    }

    /// Encodes a term against the shared dictionary, cloning it
    /// copy-on-write only when the term is genuinely new.
    fn encode(&mut self, term: &Term) -> Id {
        if let Some(id) = self.dict.lookup(term) {
            return id;
        }
        Arc::make_mut(&mut self.dict).encode(term)
    }

    /// Buffers an insertion of an already-encoded triple. A pending deletion
    /// of the same triple is cancelled (last operation wins).
    pub fn insert(&mut self, t: Triple) {
        let row = t.as_array();
        self.deletes.remove(&row);
        self.inserts.insert(row);
    }

    /// Encodes the three terms and buffers the insertion.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) {
        let t = Triple::new(self.encode(s), self.encode(p), self.encode(o));
        self.insert(t);
    }

    /// Buffers a deletion of an already-encoded triple. A pending insertion
    /// of the same triple is cancelled (last operation wins). Deleting a
    /// triple that is not in the store is a no-op at commit.
    pub fn delete(&mut self, t: Triple) {
        let row = t.as_array();
        self.inserts.remove(&row);
        self.deletes.insert(row);
    }

    /// Looks the three terms up and buffers the deletion. Returns `false`
    /// (doing nothing) when any term is unknown — the triple cannot exist.
    pub fn delete_terms(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) =
            (self.dict.lookup(s), self.dict.lookup(p), self.dict.lookup(o))
        else {
            return false;
        };
        self.delete(Triple::new(s, p, o));
        true
    }

    /// Parses an N-Triples document and buffers every statement, one at a
    /// time — no intermediate `Vec` of decoded terms is materialized, so
    /// peak memory during ingest is the document plus the encoded delta.
    /// Atomic on error: a malformed document leaves the pending delta and
    /// dictionary exactly as they were (the pre-load delta is snapshotted,
    /// which is cheap in the common bulk-load-into-empty-delta case).
    pub fn load_ntriples(&mut self, doc: &str) -> Result<usize, ntriples::ParseError> {
        let undo = (Arc::clone(&self.dict), self.inserts.clone(), self.deletes.clone());
        ntriples::parse_document_each(doc, |s, p, o| self.insert_terms(&s, &p, &o))
            .inspect_err(|_| self.unwind_load(undo))
    }

    /// Parses a Turtle document and buffers every statement, streaming and
    /// atomic-on-error like [`load_ntriples`](Self::load_ntriples).
    pub fn load_turtle(&mut self, doc: &str) -> Result<usize, uo_rdf::turtle::TurtleError> {
        let undo = (Arc::clone(&self.dict), self.inserts.clone(), self.deletes.clone());
        uo_rdf::turtle::parse_turtle_each(doc, &mut |s, p, o| self.insert_terms(&s, &p, &o))
            .inspect_err(|_| self.unwind_load(undo))
    }

    /// Restores the pre-load state after a failed streaming load.
    #[allow(clippy::type_complexity)]
    fn unwind_load(&mut self, undo: (Arc<Dictionary>, FxHashSet<[Id; 3]>, FxHashSet<[Id; 3]>)) {
        (self.dict, self.inserts, self.deletes) = undo;
    }

    /// Publishes the pending delta as a new snapshot with `UO_THREADS`
    /// parallelism. See [`commit_with`](Self::commit_with).
    pub fn commit(&mut self) -> Arc<Snapshot> {
        self.commit_with(Parallelism::from_env())
    }

    /// Publishes the pending delta: sorts the delta (K log K), normalizes
    /// it against the base, appends it as one new level in all three
    /// permutation orders, updates statistics incrementally, and bumps the
    /// epoch — O(K log N) total, independent of the base size. The
    /// writer's base advances to the new snapshot; the old snapshot is
    /// untouched, so concurrent readers holding it are unaffected.
    ///
    /// A commit with an empty delta and an unchanged dictionary returns the
    /// current base unchanged (same epoch).
    pub fn commit_with(&mut self, par: Parallelism) -> Arc<Snapshot> {
        let dict_reused = Arc::ptr_eq(&self.dict, self.base.dict_arc());
        if self.inserts.is_empty() && self.deletes.is_empty() && dict_reused {
            return Arc::clone(&self.base);
        }
        let span = self.tracer.start(self.trace_parent, "commit", "delta_merge");
        let inserts: Vec<[Id; 3]> = std::mem::take(&mut self.inserts).into_iter().collect();
        let deletes: Vec<[Id; 3]> = std::mem::take(&mut self.deletes).into_iter().collect();
        let (snap, mut stats) =
            commit_delta(&self.base, Arc::clone(&self.dict), inserts, deletes, par);
        stats.dict_reused = dict_reused;
        self.total_rows_sorted += stats.rows_sorted;
        self.total_rows_merged += stats.rows_merged;
        self.last_commit = stats;
        self.tracer.end_with(span, || {
            vec![
                ("epoch", stats.epoch.to_string()),
                ("rows_sorted", stats.rows_sorted.to_string()),
                ("rows_merged", stats.rows_merged.to_string()),
                ("levels", stats.levels.to_string()),
            ]
        });
        let arc = Arc::new(snap);
        self.base = Arc::clone(&arc);
        arc
    }

    /// Swaps the writer's base for a compacted rearrangement of the **same
    /// version**: `compacted` must carry the current base's epoch (it came
    /// from [`Snapshot::compact_with`] on that exact snapshot). Content,
    /// epoch, and statistics are identical — only the level layout
    /// changes — so nothing is journaled and readers of either arrangement
    /// agree bit-for-bit. The install is refused (returns `false`) when
    /// the epochs differ, i.e. a commit raced the background compaction.
    pub fn install_compacted(&mut self, compacted: Arc<Snapshot>) -> bool {
        if compacted.epoch() != self.base.epoch() {
            return false;
        }
        debug_assert_eq!(compacted.len(), self.base.len());
        self.base = compacted;
        true
    }

    /// Discards the pending (uncommitted) delta and any terms it encoded,
    /// restoring the writer to its last committed state. Used to abandon a
    /// cancelled or failed update request without leaking half its
    /// operations into the next one.
    pub fn rollback(&mut self) {
        self.inserts.clear();
        self.deletes.clear();
        self.dict = Arc::clone(self.base.dict_arc());
    }
}

impl Default for StoreWriter {
    fn default() -> Self {
        StoreWriter::new()
    }
}

/// Folds a delta into `base` by appending one level to the tiered run
/// stack, producing the next snapshot and the commit accounting. Shared by
/// [`StoreWriter::commit_with`] and the [`TripleStore`](crate::TripleStore)
/// facade's incremental rebuild.
///
/// The delta is **normalized** against the base first: inserts of rows
/// already live and deletes of rows not live are dropped. Normalization is
/// what gives the level stack its algebra — every surviving add lands on a
/// dead row and every tombstone on a live one, so per-row occurrences
/// alternate add/delete from the bottom up and range counts subtract
/// exactly. It also keeps the statistics update exact
/// ([`DatasetStats::apply_delta`]).
pub(crate) fn commit_delta(
    base: &Snapshot,
    dict: Arc<Dictionary>,
    mut inserts: Vec<[Id; 3]>,
    mut deletes: Vec<[Id; 3]>,
    par: Parallelism,
) -> (Snapshot, CommitStats) {
    let epoch = base.epoch + 1;
    let mut stats = CommitStats { epoch, ..CommitStats::default() };

    stats.rows_sorted += inserts.len() + deletes.len();
    uo_par::sort_unstable(par, &mut inserts);
    inserts.dedup();
    deletes.sort_unstable();
    deletes.dedup();
    stats.delta_inserts = inserts.len();
    stats.delta_deletes = deletes.len();

    // An initial bulk load arrives here with an empty base; derive
    // everything from the (already sorted) insert run directly.
    if base.levels.is_empty() && deletes.is_empty() {
        let spo = inserts;
        let (pos, osp, ds) = derive_indexes(&dict, &spo, par);
        stats.rows_sorted += 2 * spo.len();
        stats.rows_merged += 3 * spo.len();
        let len = spo.len();
        let (levels, next_run_id) = if len == 0 {
            (Vec::new(), base.next_run_id)
        } else {
            (
                vec![Arc::new(Level::from_sorted(
                    base.next_run_id,
                    [spo, pos, osp],
                    Default::default(),
                ))],
                base.next_run_id + 1,
            )
        };
        stats.levels = levels.len();
        return (Snapshot { dict, epoch, levels, len, next_run_id, stats: ds }, stats);
    }

    // Normalize: drop inserts of live rows and deletes of dead rows.
    inserts.retain(|&[s, p, o]| base.count_pattern(Some(s), Some(p), Some(o)) == 0);
    deletes.retain(|&[s, p, o]| base.count_pattern(Some(s), Some(p), Some(o)) > 0);

    if inserts.is_empty() && deletes.is_empty() {
        // Nothing survived normalization: same content at the next epoch,
        // reusing every level by reference.
        stats.levels = base.levels.len();
        let snap = Snapshot {
            dict,
            epoch,
            levels: base.levels.clone(),
            len: base.len,
            next_run_id: base.next_run_id,
            stats: base.stats.clone(),
        };
        return (snap, stats);
    }

    let permute = |kind: IndexKind, rows: &[[Id; 3]]| -> Vec<[Id; 3]> {
        let mut v: Vec<[Id; 3]> = rows.iter().map(|&t| kind.from_spo(t)).collect();
        v.sort_unstable();
        v
    };

    let mut ds = base.stats.clone();
    let ((pos_i, pos_d), (osp_i, osp_d), ()) = uo_par::join3(
        par,
        || (permute(IndexKind::Pos, &inserts), permute(IndexKind::Pos, &deletes)),
        || (permute(IndexKind::Osp, &inserts), permute(IndexKind::Osp, &deletes)),
        || ds.apply_delta(base, &dict, &inserts, &deletes),
    );
    stats.rows_sorted += 2 * (inserts.len() + deletes.len());
    stats.rows_merged += 3 * (inserts.len() + deletes.len());

    let len = base.len + inserts.len() - deletes.len();
    let level = Arc::new(Level::from_sorted(
        base.next_run_id,
        [inserts, pos_i, osp_i],
        [deletes, pos_d, osp_d],
    ));
    let mut levels = Vec::with_capacity(base.levels.len() + 1);
    levels.extend(base.levels.iter().cloned());
    levels.push(level);
    let mut snap =
        Snapshot { dict, epoch, levels, len, next_run_id: base.next_run_id + 1, stats: ds };

    // Deterministic inline compaction: depends only on the commit
    // sequence, never on timing or worker count.
    if snap.levels.len() >= INLINE_COMPACT_LEVELS {
        snap =
            snap.compact_with(par).expect("storage error while compacting the level stack inline");
        stats.compaction_rows += 3 * snap.len();
    }
    stats.levels = snap.levels.len();
    (snap, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(s: &str) -> Term {
        Term::iri(format!("http://{s}"))
    }

    fn bulk(n: usize) -> Arc<Snapshot> {
        let mut w = StoreWriter::new();
        for i in 0..n {
            w.insert_terms(&term(&format!("s{}", i % 97)), &term("p"), &term(&format!("o{i}")));
        }
        w.commit_with(Parallelism::sequential())
    }

    #[test]
    fn commit_appends_level_without_touching_base() {
        let base = bulk(5_000);
        let n = base.len();
        let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
        for i in 0..5 {
            w.insert_terms(&term("new"), &term("p"), &term(&format!("fresh{i}")));
        }
        let snap = w.commit_with(Parallelism::sequential());
        assert_eq!(snap.len(), n + 5);
        assert_eq!(snap.epoch(), base.epoch() + 1);
        let st = w.last_commit();
        assert_eq!(st.delta_inserts, 5);
        // The tiering contract: a K-row commit sorts and writes only delta
        // rows (once per permutation); the N base rows stay untouched.
        assert_eq!(st.rows_sorted, 3 * 5);
        assert_eq!(st.rows_merged, 3 * 5);
        assert_eq!(st.compaction_rows, 0);
        assert_eq!(st.levels, 2, "base level + the freshly appended one");
        assert!(st.rows_sorted + st.rows_merged < n, "commit cost must be O(K), not O(N)");
    }

    #[test]
    fn commit_cost_is_proportional_to_delta() {
        // The ISSUE acceptance shape: a large base, a tiny delta — the
        // commit's row accounting must scale with the delta alone.
        let base = bulk(100_000);
        let n = base.len();
        let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
        for i in 0..100 {
            w.insert_terms(&term("delta"), &term("p"), &term(&format!("d{i}")));
        }
        let snap = w.commit_with(Parallelism::sequential());
        assert_eq!(snap.len(), n + 100);
        let st = w.last_commit();
        assert_eq!(st.delta_inserts, 100);
        assert_eq!(st.rows_sorted, 3 * 100);
        assert_eq!(st.rows_merged, 3 * 100);
        assert!(
            st.rows_sorted + st.rows_merged + st.compaction_rows <= 10 * 100,
            "O(K) commit: touched {} rows for a 100-row delta over a {n}-row base",
            st.rows_sorted + st.rows_merged + st.compaction_rows,
        );
    }

    #[test]
    fn inline_compaction_caps_level_stack() {
        let mut w = StoreWriter::new();
        w.insert_terms(&term("seed"), &term("p"), &term("o"));
        w.commit_with(Parallelism::sequential());
        let mut compacted_once = false;
        for i in 0..2 * INLINE_COMPACT_LEVELS {
            w.insert_terms(&term(&format!("s{i}")), &term("p"), &term(&format!("o{i}")));
            w.commit_with(Parallelism::sequential());
            let st = w.last_commit();
            assert!(st.levels <= INLINE_COMPACT_LEVELS, "stack depth stays capped");
            if st.compaction_rows > 0 {
                compacted_once = true;
                assert_eq!(st.levels, 1, "inline compaction collapses to one level");
            }
        }
        assert!(compacted_once, "enough commits must trigger the inline cap");
        let snap = w.snapshot();
        assert_eq!(snap.len(), 1 + 2 * INLINE_COMPACT_LEVELS);
        assert_eq!(snap.count_pattern(None, None, None), snap.len());
    }

    #[test]
    fn commit_equals_bulk_rebuild() {
        let base = bulk(500);
        let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
        w.insert_terms(&term("x"), &term("p"), &term("y"));
        w.insert_terms(&term("s0"), &term("q"), &term("o1"));
        assert!(w.delete_terms(&term("s1"), &term("p"), &term("o1")));
        assert!(!w.delete_terms(&term("never-seen"), &term("p"), &term("o1")));
        let snap = w.commit_with(Parallelism::sequential());

        // Rebuild the surviving set from scratch and compare everything.
        let mut rebuilt = StoreWriter::new();
        for t in snap.iter() {
            let d = snap.dictionary();
            rebuilt.insert_terms(
                d.decode(t.subject).unwrap(),
                d.decode(t.predicate).unwrap(),
                d.decode(t.object).unwrap(),
            );
        }
        let fresh = rebuilt.commit_with(Parallelism::sequential());
        assert_eq!(fresh.len(), snap.len());
        let decode_all = |s: &Snapshot| {
            s.iter()
                .map(|t| {
                    let d = s.dictionary();
                    (
                        d.decode(t.subject).unwrap().clone(),
                        d.decode(t.predicate).unwrap().clone(),
                        d.decode(t.object).unwrap().clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut a = decode_all(&snap);
        let mut b = decode_all(&fresh);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(snap.stats().triples, fresh.stats().triples);
        assert_eq!(snap.stats().entities, fresh.stats().entities);
        assert_eq!(snap.stats().predicates, fresh.stats().predicates);
    }

    #[test]
    fn readers_keep_their_snapshot_across_commits() {
        let base = bulk(100);
        let reader = Arc::clone(&base);
        let before: Vec<Triple> = reader.iter().collect();
        let mut w = StoreWriter::from_snapshot(base);
        w.insert_terms(&term("brand"), &term("new"), &term("triple"));
        let after = w.commit_with(Parallelism::sequential());
        assert_eq!(reader.iter().collect::<Vec<_>>(), before, "reader view unchanged");
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(after.epoch(), reader.epoch() + 1);
    }

    #[test]
    fn empty_commit_keeps_epoch_and_identity() {
        let base = bulk(10);
        let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
        let same = w.commit_with(Parallelism::sequential());
        assert!(Arc::ptr_eq(&base, &same));
        assert_eq!(same.epoch(), base.epoch());
    }

    #[test]
    fn insert_then_delete_cancels_and_vice_versa() {
        let base = bulk(10);
        let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
        // Insert then delete in the same delta: absent.
        w.insert_terms(&term("t"), &term("p"), &term("u"));
        assert!(w.delete_terms(&term("t"), &term("p"), &term("u")));
        // Delete then re-insert an existing triple: present.
        assert!(w.delete_terms(&term("s0"), &term("p"), &term("o0")));
        w.insert_terms(&term("s0"), &term("p"), &term("o0"));
        let snap = w.commit_with(Parallelism::sequential());
        let d = snap.dictionary();
        let id = |t: &Term| d.lookup(t);
        assert_eq!(
            snap.count_pattern(id(&term("t")), id(&term("p")), id(&term("u"))),
            0,
            "insert+delete cancelled"
        );
        assert_eq!(snap.count_pattern(id(&term("s0")), id(&term("p")), id(&term("o0"))), 1);
        assert_eq!(snap.len(), base.len());
    }

    #[test]
    fn dictionary_reuse_is_reported() {
        let base = bulk(10);
        let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
        // Only known terms: the dictionary allocation is shared.
        assert!(w.delete_terms(&term("s0"), &term("p"), &term("o0")));
        let snap = w.commit_with(Parallelism::sequential());
        assert!(w.last_commit().dict_reused);
        assert!(Arc::ptr_eq(snap.dict_arc(), base.dict_arc()));
        // A new term forces a copy-on-write clone.
        w.insert_terms(&term("unseen"), &term("p"), &term("o0"));
        let snap2 = w.commit_with(Parallelism::sequential());
        assert!(!w.last_commit().dict_reused);
        assert!(snap2.dictionary().lookup(&term("unseen")).is_some());
        assert!(base.dictionary().lookup(&term("unseen")).is_none(), "base dict untouched");
    }

    #[test]
    fn parallel_commit_matches_sequential() {
        let base = bulk(3_000);
        let apply = |par: Parallelism| {
            let mut w = StoreWriter::from_snapshot(Arc::clone(&base));
            for i in 0..40 {
                w.insert_terms(&term(&format!("n{i}")), &term("p2"), &term(&format!("m{i}")));
            }
            for i in 0..20 {
                w.delete_terms(&term(&format!("s{}", i % 97)), &term("p"), &term(&format!("o{i}")));
            }
            w.commit_with(par)
        };
        let seq = apply(Parallelism::sequential());
        for threads in [2, 4, 8] {
            let par = apply(Parallelism::new(threads));
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            assert!(seq.iter().eq(par.iter()), "threads={threads}");
            assert_eq!(par.epoch(), seq.epoch());
            assert_eq!(par.stats().triples, seq.stats().triples);
            assert_eq!(par.stats().entities, seq.stats().entities);
        }
    }

    #[test]
    fn streaming_loaders_buffer_statements() {
        let mut w = StoreWriter::new();
        let n = w
            .load_ntriples("<http://a> <http://p> <http://b> .\n<http://a> <http://p> \"x\" .\n")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(w.pending_inserts(), 2);
        let snap = w.commit_with(Parallelism::sequential());
        assert_eq!(snap.len(), 2);
    }
}
