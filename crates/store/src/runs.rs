//! Tiered sorted runs: the building blocks of a [`Snapshot`](crate::Snapshot).
//!
//! A snapshot is a stack of immutable **levels**. Each level holds the
//! triples one commit added and the tombstones for the triples it deleted,
//! in all three permutation orders (SPO / POS / OSP), each as one sorted
//! run. A run lives either in memory ([`RunData::Mem`]) or inside a paged
//! v3 file ([`RunData::Disk`]), read lazily page by page.
//!
//! Commit-time normalization guarantees that within one level the add and
//! delete runs are disjoint, that a level only adds rows that are dead in
//! the levels below it and only deletes rows that are live below it. A row
//! is therefore live iff its occurrences across the stack contain more
//! adds than deletes — the rule [`uo_par::merge_tiers`] and the per-level
//! range-count subtraction in `Snapshot::count_pattern` both rely on.

use crate::paged::DiskRun;
use crate::persist::SnapshotError;
use uo_rdf::Id;

/// One sorted run of permuted rows: resident or disk-backed.
#[derive(Debug, Clone)]
pub(crate) enum RunData {
    /// Rows held in memory, sorted in the run's permutation order.
    Mem(Vec<[Id; 3]>),
    /// Rows inside a paged v3 file, loaded lazily per page.
    Disk(DiskRun),
}

/// Rows obtained from a [`RunData`]: a zero-copy slice for memory runs, an
/// owned buffer for pages materialized from disk.
pub(crate) enum RowsRef<'a> {
    Slice(&'a [[Id; 3]]),
    Owned(Vec<[Id; 3]>),
}

impl RowsRef<'_> {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[[Id; 3]] {
        match self {
            RowsRef::Slice(s) => s,
            RowsRef::Owned(v) => v,
        }
    }
}

impl RunData {
    /// Number of rows in the run.
    pub(crate) fn len(&self) -> usize {
        match self {
            RunData::Mem(v) => v.len(),
            RunData::Disk(d) => d.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the rows live in a paged file rather than memory.
    pub(crate) fn is_disk(&self) -> bool {
        matches!(self, RunData::Disk(_))
    }

    /// Half-open index range of rows starting with `prefix`. For disk runs
    /// this binary-searches the per-page first-row index and refines the
    /// two boundary pages — at most four page reads.
    pub(crate) fn bounds(&self, prefix: &[Id]) -> Result<(usize, usize), SnapshotError> {
        match self {
            RunData::Mem(v) => Ok(crate::index::prefix_bounds(v, prefix)),
            RunData::Disk(d) => d.bounds(prefix),
        }
    }

    /// The rows in `[lo, hi)`; disk runs materialize only the touched pages.
    pub(crate) fn range(&self, lo: usize, hi: usize) -> Result<RowsRef<'_>, SnapshotError> {
        match self {
            RunData::Mem(v) => Ok(RowsRef::Slice(&v[lo..hi])),
            RunData::Disk(d) => d.read_range(lo, hi).map(RowsRef::Owned),
        }
    }

    /// Every row of the run.
    pub(crate) fn rows(&self) -> Result<RowsRef<'_>, SnapshotError> {
        self.range(0, self.len())
    }
}

/// One tier of the snapshot: what a single commit (or compaction) added
/// and deleted, in all three permutation orders.
#[derive(Debug, Clone)]
pub(crate) struct Level {
    /// Run id, unique and monotone within a store lineage. Names the
    /// on-disk run file (`runs/run-<id>.uorun`) in durable stores.
    pub(crate) id: u64,
    /// Added rows, indexed by `IndexKind::slot()` (SPO, POS, OSP).
    pub(crate) adds: [RunData; 3],
    /// Tombstones for rows live in lower levels, same indexing.
    pub(crate) dels: [RunData; 3],
}

impl Level {
    /// Builds a memory-resident level from pre-sorted permuted runs.
    pub(crate) fn from_sorted(id: u64, adds: [Vec<[Id; 3]>; 3], dels: [Vec<[Id; 3]>; 3]) -> Level {
        Level { id, adds: adds.map(RunData::Mem), dels: dels.map(RunData::Mem) }
    }

    /// Rows this level adds (per permutation; all three are equal).
    pub(crate) fn add_rows(&self) -> usize {
        self.adds[0].len()
    }

    /// Tombstones this level carries (per permutation).
    pub(crate) fn del_rows(&self) -> usize {
        self.dels[0].len()
    }

    /// True when any run of this level is disk-backed.
    pub(crate) fn is_disk(&self) -> bool {
        self.adds.iter().chain(self.dels.iter()).any(|r| r.is_disk())
    }
}
