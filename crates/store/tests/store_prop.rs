//! Property-based tests for the triple store: every pattern shape must agree
//! with a naive scan over the inserted triples.

use proptest::prelude::*;
use uo_rdf::{Id, Triple};
use uo_store::TripleStore;

fn arb_triples() -> impl Strategy<Value = Vec<[Id; 3]>> {
    prop::collection::vec(((1u32..8), (1u32..5), (1u32..8)).prop_map(|(s, p, o)| [s, p, o]), 0..60)
}

fn naive_count(triples: &[[Id; 3]], s: Option<Id>, p: Option<Id>, o: Option<Id>) -> usize {
    let mut uniq: Vec<[Id; 3]> = triples.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    uniq.iter()
        .filter(|t| {
            s.is_none_or(|s| t[0] == s)
                && p.is_none_or(|p| t[1] == p)
                && o.is_none_or(|o| t[2] == o)
        })
        .count()
}

fn build(triples: &[[Id; 3]]) -> TripleStore {
    let mut st = TripleStore::new();
    // Ids must exist in the dictionary for decode-based stats; encode dummy
    // terms so ids 1..8 are valid.
    for i in 0..8 {
        st.dictionary_mut().encode(&uo_rdf::Term::iri(format!("http://t{i}")));
    }
    for &t in triples {
        st.insert(Triple::from(t));
    }
    st.build();
    st
}

proptest! {
    #[test]
    fn counts_match_naive_scan(
        triples in arb_triples(),
        s in prop::option::of(1u32..8),
        p in prop::option::of(1u32..5),
        o in prop::option::of(1u32..8),
    ) {
        let st = build(&triples);
        prop_assert_eq!(st.count_pattern(s, p, o), naive_count(&triples, s, p, o));
    }

    #[test]
    fn matches_have_correct_components(
        triples in arb_triples(),
        s in prop::option::of(1u32..8),
        p in prop::option::of(1u32..5),
        o in prop::option::of(1u32..8),
    ) {
        let st = build(&triples);
        for [ms, mp, mo] in st.match_pattern(s, p, o).iter_spo() {
            if let Some(s) = s { prop_assert_eq!(ms, s); }
            if let Some(p) = p { prop_assert_eq!(mp, p); }
            if let Some(o) = o { prop_assert_eq!(mo, o); }
            prop_assert!(st.contains(Triple::new(ms, mp, mo)));
        }
    }

    #[test]
    fn full_scan_is_sorted_and_deduped(triples in arb_triples()) {
        let st = build(&triples);
        let all: Vec<[Id; 3]> = st.match_pattern(None, None, None).iter_spo().collect();
        let mut expected: Vec<[Id; 3]> = triples.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(all, expected);
    }

    #[test]
    fn stats_triples_equals_len(triples in arb_triples()) {
        let st = build(&triples);
        prop_assert_eq!(st.stats().triples, st.len());
    }

    #[test]
    fn predicate_stats_sum_to_total(triples in arb_triples()) {
        let st = build(&triples);
        let total: usize = (1u32..5)
            .filter_map(|p| st.stats().predicate(p).map(|ps| ps.count))
            .sum();
        prop_assert_eq!(total, st.len());
    }
}
