//! Property-based tests of the MVCC writer: any interleaving of inserts,
//! deletes, commits and compactions must land on a snapshot identical —
//! row-for-row, in every permutation index, with identical statistics — to
//! a from-scratch bulk build of the surviving triple set, at 1, 2 and 4
//! workers.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use uo_par::Parallelism;
use uo_rdf::{Id, Term, Triple};
use uo_store::{Snapshot, StoreWriter, TripleStore};

const MAX_ID: u32 = 9;

#[derive(Debug, Clone)]
enum Op {
    Insert([Id; 3]),
    Delete([Id; 3]),
    Commit,
    Compact,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Weighted op choice without prop_oneof (vendored subset): 0..4 insert,
    // 4..6 delete, 6 commit, 7 compact.
    let op =
        (0u8..8, (1u32..MAX_ID, 1u32..5, 1u32..MAX_ID)).prop_map(|(kind, (s, p, o))| match kind {
            0..=3 => Op::Insert([s, p, o]),
            4..=5 => Op::Delete([s, p, o]),
            6 => Op::Commit,
            _ => Op::Compact,
        });
    prop::collection::vec(op, 0..80)
}

/// An empty built store whose dictionary knows ids `1..MAX_ID` (IRIs), so
/// raw-id triples are valid in both the writer and the bulk rebuild.
fn seeded() -> TripleStore {
    let mut st = TripleStore::new();
    for i in 0..MAX_ID {
        st.dictionary_mut().encode(&Term::iri(format!("http://t{i}")));
    }
    st.build();
    st
}

/// Applies the interleaving through the writer (committing whenever the ops
/// say so, plus once at the end) and in a model set, then compares the
/// final snapshot against a bulk build of the model.
fn check(ops: &[Op], workers: usize) -> Result<(), TestCaseError> {
    let par = Parallelism::new(workers);
    let base = seeded();
    let mut writer = StoreWriter::from_snapshot(base.snapshot());
    let mut model: BTreeSet<[Id; 3]> = BTreeSet::new();
    for op in ops {
        match op {
            Op::Insert(t) => {
                writer.insert(Triple::from(*t));
                model.insert(*t);
            }
            Op::Delete(t) => {
                writer.delete(Triple::from(*t));
                model.remove(t);
            }
            Op::Commit => {
                writer.commit_with(par);
            }
            Op::Compact => {
                // Fold the level stack like the server's maintenance thread:
                // same epoch, same content, one level.
                let compacted = writer.snapshot().compact_with(par).expect("in-memory compaction");
                prop_assert!(writer.install_compacted(Arc::new(compacted)));
            }
        }
    }
    let snap = writer.commit_with(par);

    let bulk = Snapshot::build_from(
        Arc::clone(base.snapshot().dict_arc()),
        model.iter().copied().collect(),
        0,
        Parallelism::sequential(),
    );

    // Byte-identical iteration order (the SPO index)...
    let got: Vec<[Id; 3]> = snap.iter().map(|t| t.as_array()).collect();
    let want: Vec<[Id; 3]> = bulk.iter().map(|t| t.as_array()).collect();
    prop_assert_eq!(&got, &want, "workers={}", workers);

    // ... all 8 pattern shapes answer identically (rows, not just counts:
    // POS and OSP are exercised by the bound-component shapes) ...
    for s in [None, Some(1u32), Some(3)] {
        for p in [None, Some(1u32), Some(4)] {
            for o in [None, Some(2u32), Some(7)] {
                let a = snap.match_pattern(s, p, o);
                let b = bulk.match_pattern(s, p, o);
                prop_assert_eq!(a.kind, b.kind);
                prop_assert_eq!(a.rows(), b.rows(), "pattern ({:?},{:?},{:?})", s, p, o);
            }
        }
    }

    // ... and identical statistics.
    prop_assert_eq!(snap.stats().triples, bulk.stats().triples);
    prop_assert_eq!(snap.stats().entities, bulk.stats().entities);
    prop_assert_eq!(snap.stats().predicates, bulk.stats().predicates);
    prop_assert_eq!(snap.stats().literals, bulk.stats().literals);
    for p in 1..5u32 {
        let a =
            snap.stats().predicate(p).map(|x| (x.count, x.distinct_subjects, x.distinct_objects));
        let b =
            bulk.stats().predicate(p).map(|x| (x.count, x.distinct_subjects, x.distinct_objects));
        prop_assert_eq!(a, b, "predicate {}", p);
    }
    Ok(())
}

proptest! {
    #[test]
    fn interleavings_match_bulk_build(ops in arb_ops()) {
        for workers in [1usize, 2, 4] {
            check(&ops, workers)?;
        }
    }

    /// Epochs advance by exactly the number of non-empty commits, and the
    /// writer's base always equals its last published snapshot.
    #[test]
    fn epochs_are_monotonic(ops in arb_ops()) {
        let base = seeded();
        let mut writer = StoreWriter::from_snapshot(base.snapshot());
        let mut last = writer.snapshot().epoch();
        for op in &ops {
            match op {
                Op::Insert(t) => writer.insert(Triple::from(*t)),
                Op::Delete(t) => writer.delete(Triple::from(*t)),
                Op::Commit => {
                    let snap = writer.commit_with(Parallelism::sequential());
                    prop_assert!(snap.epoch() >= last);
                    prop_assert!(snap.epoch() <= last + 1, "one commit, at most one epoch");
                    last = snap.epoch();
                }
                Op::Compact => {
                    let compacted = writer
                        .snapshot()
                        .compact_with(Parallelism::sequential())
                        .expect("in-memory compaction");
                    let epoch = compacted.epoch();
                    prop_assert!(writer.install_compacted(Arc::new(compacted)));
                    prop_assert_eq!(epoch, last, "compaction never changes the epoch");
                }
            }
        }
    }
}
