//! A bounded LRU cache of optimized query plans.
//!
//! Keys are *canonicalized* query text — the re-serialization of the parsed
//! query (`uo_sparql::serialize`), so whitespace, prefix, and comment
//! variants of the same query share one entry. Values are the optimized
//! [`Prepared`] (BE-tree already transformed and, for `full`, annotated
//! with pruning thresholds) plus the transformation counters; a hit skips
//! BE-tree construction *and* optimization and goes straight to execution
//! (the raw text is still parsed once per request to compute the canonical
//! key). Plans are shared as [`Arc`]s so the mutex critical section is a
//! pointer clone, not a deep copy of the plan tree.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use uo_core::{Prepared, TransformOutcome};

struct Entry {
    prepared: Arc<Prepared>,
    transforms: TransformOutcome,
    last_used: u64,
}

/// A thread-safe LRU plan cache. Capacity 0 disables caching entirely
/// (every lookup misses, inserts are dropped).
pub struct PlanCache {
    capacity: usize,
    tick: AtomicU64,
    entries: Mutex<HashMap<String, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a plan by canonical query text, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<(Arc<Prepared>, TransformOutcome)> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get_mut(key) {
            Some(e) => {
                e.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((Arc::clone(&e.prepared), e.transforms))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an optimized plan, evicting the least-recently-used entry
    /// when full. Concurrent inserts of the same key keep the newer value —
    /// both are equivalent plans of the same canonical text.
    pub fn insert(&self, key: String, prepared: Arc<Prepared>, transforms: TransformOutcome) {
        if self.capacity == 0 {
            return;
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // O(n) scan for the LRU victim: capacities are small (hundreds)
            // and eviction only happens on misses of a full cache.
            if let Some(victim) =
                entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        entries.insert(key, Entry { prepared, transforms, last_used: now });
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_core::prepare;
    use uo_rdf::Term;
    use uo_store::TripleStore;

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_terms(&Term::iri("http://a"), &Term::iri("http://p"), &Term::iri("http://b"));
        st.build();
        st
    }

    fn plan(st: &TripleStore, q: &str) -> Arc<Prepared> {
        Arc::new(prepare(st, q).unwrap())
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let st = store();
        let cache = PlanCache::new(2);
        let q = |n: usize| format!("SELECT ?x WHERE {{ ?x <http://p{n}> ?y }}");
        assert!(cache.get(&q(1)).is_none());
        cache.insert(q(1), plan(&st, &q(1)), TransformOutcome::default());
        cache.insert(q(2), plan(&st, &q(2)), TransformOutcome::default());
        assert!(cache.get(&q(1)).is_some());
        // Inserting a third evicts the LRU entry — q2, since q1 was just
        // touched.
        cache.insert(q(3), plan(&st, &q(3)), TransformOutcome::default());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&q(2)).is_none());
        assert!(cache.get(&q(1)).is_some());
        assert!(cache.get(&q(3)).is_some());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (3, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let st = store();
        let cache = PlanCache::new(0);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y }";
        cache.insert(q.to_string(), plan(&st, q), TransformOutcome::default());
        assert!(cache.is_empty());
        assert!(cache.get(q).is_none());
    }
}
