//! A bounded LRU cache of optimized query plans, tagged with the store
//! epoch they were planned against.
//!
//! Keys are *canonicalized* query text — the re-serialization of the parsed
//! query (`uo_sparql::serialize`), so whitespace, prefix, and comment
//! variants of the same query share one entry. Values are the optimized
//! [`Prepared`] (BE-tree already transformed and, for `full`, annotated
//! with pruning thresholds) plus the transformation counters; a hit skips
//! BE-tree construction *and* optimization and goes straight to execution
//! (the raw text is still parsed once per request to compute the canonical
//! key). Plans are shared as [`Arc`]s so the mutex critical section is a
//! pointer clone, not a deep copy of the plan tree.
//!
//! Every entry records the **epoch** of the snapshot it was planned
//! against. A plan holds dictionary-encoded constants and cardinality
//! annotations of its snapshot, so after a commit it may be wrong for the
//! new data; [`get`](PlanCache::get) therefore only returns entries whose
//! epoch matches the caller's snapshot. Stale entries are *not* flushed —
//! they count as misses and are overwritten in place by the re-plan, so a
//! commit invalidates the whole cache logically at zero cost while the
//! cache structure (capacity, recency) survives.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use uo_core::{Prepared, TransformOutcome};

/// Observed execution statistics for one cached plan, shared between the
/// cache entry and the request path as an [`Arc`] so recording an
/// execution never takes the cache mutex. A re-plan (stale overwrite)
/// installs a *fresh* stats object carrying the new epoch and estimate, so
/// the actual-vs-estimated ratio always describes the currently cached
/// plan, not an accumulation across invalidated generations.
#[derive(Debug)]
pub struct PlanEntryStats {
    /// Epoch of the snapshot the plan was optimized against.
    pub epoch: u64,
    /// The optimizer's estimate of the plan's root-result scale
    /// ([`uo_core::estimate_root_rows`]), captured at plan time; `None`
    /// when the caller did not estimate.
    pub est_root: Option<f64>,
    /// Epoch-matched cache hits served from this entry.
    hits: AtomicU64,
    /// Completed executions recorded against this plan.
    executions: AtomicU64,
    /// Cumulative execution wall nanoseconds across those executions.
    exec_nanos: AtomicU64,
    /// Actual root cardinality (result rows) of the most recent execution.
    last_rows: AtomicU64,
}

impl PlanEntryStats {
    fn new(epoch: u64, est_root: Option<f64>) -> Arc<PlanEntryStats> {
        Arc::new(PlanEntryStats {
            epoch,
            est_root,
            hits: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            exec_nanos: AtomicU64::new(0),
            last_rows: AtomicU64::new(0),
        })
    }

    /// Records one completed execution of the plan (lock-free).
    pub fn record_exec(&self, wall_nanos: u64, rows: u64) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.exec_nanos.fetch_add(wall_nanos, Ordering::Relaxed);
        self.last_rows.store(rows, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one plan's observed stats, for `/stats/plans`.
#[derive(Debug, Clone)]
pub struct PlanStatsSnapshot {
    /// Canonicalized query text keying the entry.
    pub query: String,
    /// Epoch the plan was optimized at.
    pub epoch: u64,
    /// The optimizer's root-scale estimate at plan time.
    pub est_root: Option<f64>,
    /// Epoch-matched hits served.
    pub hits: u64,
    /// Executions recorded.
    pub executions: u64,
    /// Cumulative execution wall nanoseconds.
    pub exec_nanos: u64,
    /// Actual result rows of the most recent execution.
    pub last_rows: u64,
}

impl PlanStatsSnapshot {
    /// Last actual root cardinality over the optimizer's estimate — the
    /// cardinality-feedback signal (`> 1` = underestimate). `None` until
    /// the plan has executed or when there is no (positive) estimate.
    pub fn actual_over_est(&self) -> Option<f64> {
        match self.est_root {
            Some(est) if est > 0.0 && self.executions > 0 => Some(self.last_rows as f64 / est),
            _ => None,
        }
    }
}

/// The outcome of a [`PlanCache::lookup`].
pub enum Lookup {
    /// An epoch-matched plan: skip parse-tree construction + optimization.
    Hit(Arc<Prepared>, TransformOutcome, Arc<PlanEntryStats>),
    /// The key is cached but was planned at another epoch (invalidated by
    /// a commit); counted as a miss.
    Stale,
    /// The key is not cached.
    Miss,
}

struct Entry {
    prepared: Arc<Prepared>,
    transforms: TransformOutcome,
    epoch: u64,
    last_used: u64,
    stats: Arc<PlanEntryStats>,
}

/// A thread-safe, epoch-aware LRU plan cache. Capacity 0 disables caching
/// entirely (every lookup misses, inserts are dropped).
pub struct PlanCache {
    capacity: usize,
    tick: AtomicU64,
    entries: Mutex<HashMap<String, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// Looks up a plan by canonical query text, refreshing its recency. Only
    /// entries planned at `epoch` hit; an entry from another epoch counts as
    /// a stale miss (and stays until the re-plan overwrites it).
    pub fn get(&self, key: &str, epoch: u64) -> Option<(Arc<Prepared>, TransformOutcome)> {
        match self.lookup(key, epoch) {
            Lookup::Hit(prepared, transforms, _) => Some((prepared, transforms)),
            Lookup::Stale | Lookup::Miss => None,
        }
    }

    /// [`get`](PlanCache::get) distinguishing *why* a lookup missed (cold
    /// vs. invalidated-by-commit), and handing out the entry's observed
    /// stats on a hit so the caller can record the execution.
    pub fn lookup(&self, key: &str, epoch: u64) -> Lookup {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                e.stats.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Arc::clone(&e.prepared), e.transforms, Arc::clone(&e.stats))
            }
            Some(_) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Stale
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Inserts a plan optimized at `epoch`, evicting the least-recently-used
    /// entry when full. Concurrent inserts of the same key keep the newer
    /// value — both are equivalent plans of the same canonical text (a
    /// racing insert from an older epoch is corrected by the next lookup's
    /// stale miss). `est_root` is the optimizer's root-scale estimate for
    /// the plan; the returned stats handle is the one future hits share (a
    /// fresh, detached one when the cache is disabled), so the caller can
    /// record this first execution against it.
    pub fn insert(
        &self,
        key: String,
        epoch: u64,
        prepared: Arc<Prepared>,
        transforms: TransformOutcome,
        est_root: Option<f64>,
    ) -> Arc<PlanEntryStats> {
        let stats = PlanEntryStats::new(epoch, est_root);
        if self.capacity == 0 {
            return stats;
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // O(n) scan for the LRU victim: capacities are small (hundreds)
            // and eviction only happens on misses of a full cache.
            if let Some(victim) =
                entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        entries.insert(
            key,
            Entry { prepared, transforms, epoch, last_used: now, stats: Arc::clone(&stats) },
        );
        stats
    }

    /// Observed stats of every cached plan, sorted by query text for a
    /// deterministic `/stats/plans` rendering.
    pub fn plans_snapshot(&self) -> Vec<PlanStatsSnapshot> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<PlanStatsSnapshot> = entries
            .iter()
            .map(|(key, e)| PlanStatsSnapshot {
                query: key.clone(),
                epoch: e.stats.epoch,
                est_root: e.stats.est_root,
                hits: e.stats.hits.load(Ordering::Relaxed),
                executions: e.stats.executions.load(Ordering::Relaxed),
                exec_nanos: e.stats.exec_nanos.load(Ordering::Relaxed),
                last_rows: e.stats.last_rows.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.query.cmp(&b.query));
        out
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint of the cache in bytes: the sum of key
    /// lengths plus a fixed per-entry estimate covering the `Entry` struct,
    /// the shared stats block, and the hash-map slot. Plan trees are shared
    /// `Arc`s whose deep size is not tracked, so this is a *lower bound*
    /// meant for capacity trending (the `/metrics` `resources` block), not
    /// exact accounting.
    pub fn approx_bytes(&self) -> u64 {
        const PER_ENTRY: u64 = (std::mem::size_of::<Entry>()
            + std::mem::size_of::<PlanEntryStats>()
            + std::mem::size_of::<String>()
            + 16) as u64;
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.keys().map(|k| k.len() as u64 + PER_ENTRY).sum()
    }

    /// `(hits, misses, stale)` so far; `stale` counts the misses caused by
    /// an epoch mismatch (plan invalidated by a commit) and is included in
    /// `misses`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stale.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_core::prepare;
    use uo_rdf::Term;
    use uo_store::TripleStore;

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_terms(&Term::iri("http://a"), &Term::iri("http://p"), &Term::iri("http://b"));
        st.build();
        st
    }

    fn plan(st: &TripleStore, q: &str) -> Arc<Prepared> {
        Arc::new(prepare(st, q).unwrap())
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let st = store();
        let cache = PlanCache::new(2);
        let q = |n: usize| format!("SELECT ?x WHERE {{ ?x <http://p{n}> ?y }}");
        assert!(cache.get(&q(1), 1).is_none());
        cache.insert(q(1), 1, plan(&st, &q(1)), TransformOutcome::default(), None);
        cache.insert(q(2), 1, plan(&st, &q(2)), TransformOutcome::default(), None);
        assert!(cache.get(&q(1), 1).is_some());
        // Inserting a third evicts the LRU entry — q2, since q1 was just
        // touched.
        cache.insert(q(3), 1, plan(&st, &q(3)), TransformOutcome::default(), None);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&q(2), 1).is_none());
        assert!(cache.get(&q(1), 1).is_some());
        assert!(cache.get(&q(3), 1).is_some());
        let (hits, misses, stale) = cache.stats();
        assert_eq!((hits, misses, stale), (3, 2, 0));
    }

    #[test]
    fn epoch_mismatch_is_a_stale_miss_and_replan_overwrites() {
        let st = store();
        let cache = PlanCache::new(4);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y }".to_string();
        cache.insert(q.clone(), 1, plan(&st, &q), TransformOutcome::default(), None);
        assert!(cache.get(&q, 1).is_some(), "same epoch hits");
        assert!(cache.get(&q, 2).is_none(), "a commit invalidates the plan");
        let (_, _, stale) = cache.stats();
        assert_eq!(stale, 1);
        assert_eq!(cache.len(), 1, "structure survives invalidation");
        // The re-plan replaces the entry in place; the old epoch now misses.
        cache.insert(q.clone(), 2, plan(&st, &q), TransformOutcome::default(), None);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&q, 2).is_some());
        assert!(cache.get(&q, 1).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let st = store();
        let cache = PlanCache::new(0);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y }";
        cache.insert(q.to_string(), 1, plan(&st, q), TransformOutcome::default(), None);
        assert!(cache.is_empty());
        assert!(cache.get(q, 1).is_none());
    }
}
