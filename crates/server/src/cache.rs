//! A bounded LRU cache of optimized query plans, tagged with the store
//! epoch they were planned against.
//!
//! Keys are *canonicalized* query text — the re-serialization of the parsed
//! query (`uo_sparql::serialize`), so whitespace, prefix, and comment
//! variants of the same query share one entry. Values are the optimized
//! [`Prepared`] (BE-tree already transformed and, for `full`, annotated
//! with pruning thresholds) plus the transformation counters; a hit skips
//! BE-tree construction *and* optimization and goes straight to execution
//! (the raw text is still parsed once per request to compute the canonical
//! key). Plans are shared as [`Arc`]s so the mutex critical section is a
//! pointer clone, not a deep copy of the plan tree.
//!
//! Every entry records the **epoch** of the snapshot it was planned
//! against. A plan holds dictionary-encoded constants and cardinality
//! annotations of its snapshot, so after a commit it may be wrong for the
//! new data; [`get`](PlanCache::get) therefore only returns entries whose
//! epoch matches the caller's snapshot. Stale entries are *not* flushed —
//! they count as misses and are overwritten in place by the re-plan, so a
//! commit invalidates the whole cache logically at zero cost while the
//! cache structure (capacity, recency) survives.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use uo_core::{Prepared, TransformOutcome};

struct Entry {
    prepared: Arc<Prepared>,
    transforms: TransformOutcome,
    epoch: u64,
    last_used: u64,
}

/// A thread-safe, epoch-aware LRU plan cache. Capacity 0 disables caching
/// entirely (every lookup misses, inserts are dropped).
pub struct PlanCache {
    capacity: usize,
    tick: AtomicU64,
    entries: Mutex<HashMap<String, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// Looks up a plan by canonical query text, refreshing its recency. Only
    /// entries planned at `epoch` hit; an entry from another epoch counts as
    /// a stale miss (and stays until the re-plan overwrites it).
    pub fn get(&self, key: &str, epoch: u64) -> Option<(Arc<Prepared>, TransformOutcome)> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((Arc::clone(&e.prepared), e.transforms))
            }
            Some(_) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a plan optimized at `epoch`, evicting the least-recently-used
    /// entry when full. Concurrent inserts of the same key keep the newer
    /// value — both are equivalent plans of the same canonical text (a
    /// racing insert from an older epoch is corrected by the next lookup's
    /// stale miss).
    pub fn insert(
        &self,
        key: String,
        epoch: u64,
        prepared: Arc<Prepared>,
        transforms: TransformOutcome,
    ) {
        if self.capacity == 0 {
            return;
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // O(n) scan for the LRU victim: capacities are small (hundreds)
            // and eviction only happens on misses of a full cache.
            if let Some(victim) =
                entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        entries.insert(key, Entry { prepared, transforms, epoch, last_used: now });
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, stale)` so far; `stale` counts the misses caused by
    /// an epoch mismatch (plan invalidated by a commit) and is included in
    /// `misses`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stale.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uo_core::prepare;
    use uo_rdf::Term;
    use uo_store::TripleStore;

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_terms(&Term::iri("http://a"), &Term::iri("http://p"), &Term::iri("http://b"));
        st.build();
        st
    }

    fn plan(st: &TripleStore, q: &str) -> Arc<Prepared> {
        Arc::new(prepare(st, q).unwrap())
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let st = store();
        let cache = PlanCache::new(2);
        let q = |n: usize| format!("SELECT ?x WHERE {{ ?x <http://p{n}> ?y }}");
        assert!(cache.get(&q(1), 1).is_none());
        cache.insert(q(1), 1, plan(&st, &q(1)), TransformOutcome::default());
        cache.insert(q(2), 1, plan(&st, &q(2)), TransformOutcome::default());
        assert!(cache.get(&q(1), 1).is_some());
        // Inserting a third evicts the LRU entry — q2, since q1 was just
        // touched.
        cache.insert(q(3), 1, plan(&st, &q(3)), TransformOutcome::default());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&q(2), 1).is_none());
        assert!(cache.get(&q(1), 1).is_some());
        assert!(cache.get(&q(3), 1).is_some());
        let (hits, misses, stale) = cache.stats();
        assert_eq!((hits, misses, stale), (3, 2, 0));
    }

    #[test]
    fn epoch_mismatch_is_a_stale_miss_and_replan_overwrites() {
        let st = store();
        let cache = PlanCache::new(4);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y }".to_string();
        cache.insert(q.clone(), 1, plan(&st, &q), TransformOutcome::default());
        assert!(cache.get(&q, 1).is_some(), "same epoch hits");
        assert!(cache.get(&q, 2).is_none(), "a commit invalidates the plan");
        let (_, _, stale) = cache.stats();
        assert_eq!(stale, 1);
        assert_eq!(cache.len(), 1, "structure survives invalidation");
        // The re-plan replaces the entry in place; the old epoch now misses.
        cache.insert(q.clone(), 2, plan(&st, &q), TransformOutcome::default());
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&q, 2).is_some());
        assert!(cache.get(&q, 1).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let st = store();
        let cache = PlanCache::new(0);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y }";
        cache.insert(q.to_string(), 1, plan(&st, q), TransformOutcome::default());
        assert!(cache.is_empty());
        assert!(cache.get(q, 1).is_none());
    }
}
