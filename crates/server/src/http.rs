//! A minimal HTTP/1.1 wire layer over blocking [`TcpStream`]s.
//!
//! The build environment has no registry access, so instead of hyper/tokio
//! this module implements exactly the subset the SPARQL endpoint needs:
//! request-head parsing (request line + headers, CRLF-delimited),
//! `Content-Length` bodies, percent/form decoding, and response writing.
//! Every response carries `Connection: close` and the connection serves one
//! exchange — the simplest protocol that is still correct for browsers,
//! `curl`, and the closed-loop perf harness.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed request head. The body (if any) is read separately so the
/// caller can apply admission control before buffering it.
#[derive(Debug, Clone)]
pub struct Head {
    /// Request method, uppercase as sent ("GET", "POST", …).
    pub method: String,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Raw query string (after `?`, without it; empty when absent).
    pub query: String,
    /// Header name/value pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
}

impl Head {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The `Content-Length` value, if present and parsable.
    pub fn content_length(&self) -> Option<usize> {
        self.header("content-length").and_then(|v| v.trim().parse().ok())
    }
}

/// Reads and parses a request head (up to and including the blank line).
///
/// Returns `Ok(None)` on a clean EOF before any byte (client closed an idle
/// connection); malformed input and oversized heads are `io::Error`s.
pub fn read_head(stream: &mut TcpStream) -> io::Result<Option<Head>> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: request heads are tiny and this keeps
    // the body bytes unconsumed in the stream for the caller.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated head"));
            }
            Ok(_) => {
                buf.push(byte[0]);
                if buf.len() > MAX_HEAD_BYTES {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "head too large"));
                }
                if buf.ends_with(b"\r\n\r\n") {
                    break;
                }
                // Be liberal: accept bare-LF line endings too.
                if buf.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let mut lines = text.lines();
    let request_line =
        lines.next().ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_string();
    let target =
        parts.next().ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(Some(Head { method, path, query, headers }))
}

/// Reads exactly `len` body bytes (the caller validated `len` against its
/// size cap first).
pub fn read_body(stream: &mut TcpStream, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Best-effort bounded discard of an unread request body before an early
/// error response. Closing a socket with unread data makes the kernel send
/// RST, which can destroy the queued response before the client reads it;
/// draining (up to a bound — huge bodies still get cut off) lets the error
/// arrive. Read errors and timeouts just end the drain.
pub fn drain(stream: &mut TcpStream, len: usize) {
    const MAX_DRAIN: usize = 256 * 1024;
    let mut remaining = len.min(MAX_DRAIN);
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let take = remaining.min(buf.len());
        match stream.read(&mut buf[..take]) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining -= n,
        }
    }
}

/// Writes the `100 Continue` interim response a client asked for with
/// `Expect: 100-continue` (curl sends it for bodies over ~1 KiB and stalls
/// up to a second waiting otherwise).
pub fn write_continue(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    stream.flush()
}

/// Percent-decodes a URL component; `plus_as_space` additionally maps `+`
/// to space (form encoding). Invalid escapes pass through literally rather
/// than failing the request.
pub fn percent_decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string / form body into decoded key-value pairs.
pub fn parse_form(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect()
}

/// Writes one response and flushes. `extra_headers` are emitted verbatim
/// (e.g. `("Retry-After", "1")`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b%2Bc", false), "a b+c");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("a+b", false), "a+b");
        // Invalid escapes pass through.
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("%zz", false), "%zz");
        // Multi-byte UTF-8 sequences reassemble.
        assert_eq!(percent_decode("caf%C3%A9", false), "caf\u{e9}");
    }

    #[test]
    fn form_parsing() {
        let form = parse_form("query=SELECT+%3Fx&timeout=100&flag");
        assert_eq!(
            form,
            vec![
                ("query".to_string(), "SELECT ?x".to_string()),
                ("timeout".to_string(), "100".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert!(parse_form("").is_empty());
    }
}
