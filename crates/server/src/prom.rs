//! Prometheus text-exposition rendering of the server's metrics.
//!
//! [`render`] walks the same counters, gauges, and histograms that
//! [`metrics_json`](crate::metrics_json) serves as JSON and emits them in
//! the text exposition format 0.0.4 via [`uo_obs::prom::PromText`], so a
//! Prometheus scrape of `/metrics` (negotiated by `Accept: text/plain`)
//! sees exactly the numbers a JSON consumer sees. Latency histograms keep
//! their native log₂ buckets, rendered as cumulative `le` boundaries of
//! `2^i − 1` nanoseconds — exact upper bounds, not approximations (see
//! [`uo_obs::prom`]).
//!
//! Naming follows the Prometheus conventions: an `uo_` namespace prefix,
//! `_total` on counters, base units in the name (`_seconds`, `_bytes`,
//! `_nanos` for the log₂ histograms whose samples are integer
//! nanoseconds), and labels (`type`, `outcome`) instead of name suffixes
//! for family dimensions.

use crate::{health_degraded, type_index, unix_ms, ServerState, ALL_QUERY_TYPES};
use std::sync::atomic::Ordering;
use uo_obs::prom::PromText;

/// Renders the full exposition document for one scrape.
pub(crate) fn render(state: &ServerState) -> String {
    let snap = state.counters.snapshot();
    let (cache_hits, cache_misses, cache_stale) = state.cache.stats();
    let store = state.current_snapshot();
    let tiers = store.tier_stats();
    let mut p = PromText::new();

    // -- Endpoint gauges ---------------------------------------------------
    p.header("uo_uptime_seconds", "gauge", "Endpoint uptime in seconds.");
    p.sample_f64("uo_uptime_seconds", &[], state.started.elapsed().as_secs_f64());
    p.header("uo_triples", "gauge", "Triples in the published snapshot.");
    p.sample("uo_triples", &[], store.len() as u64);
    p.header("uo_snapshot_epoch", "gauge", "Epoch of the published snapshot.");
    p.sample("uo_snapshot_epoch", &[], store.epoch());
    p.header("uo_writable", "gauge", "1 when the endpoint accepts updates.");
    p.sample("uo_writable", &[], u64::from(state.cfg.writable));
    p.header("uo_inflight_requests", "gauge", "Requests currently admitted.");
    p.sample("uo_inflight_requests", &[], state.inflight.load(Ordering::SeqCst) as u64);
    p.header("uo_max_inflight_requests", "gauge", "Admission-control concurrency limit.");
    p.sample("uo_max_inflight_requests", &[], state.cfg.max_inflight as u64);

    // -- Query counters ----------------------------------------------------
    p.header("uo_queries_total", "counter", "Queries admitted, by final outcome.");
    for (outcome, n) in [
        ("ok", snap.ok),
        ("parse_error", snap.parse_errors),
        ("cancelled", snap.cancelled),
        ("panic", snap.panics),
    ] {
        p.sample("uo_queries_total", &[("outcome", outcome)], n);
    }
    p.header("uo_queries_rejected_total", "counter", "Requests refused by admission control.");
    p.sample("uo_queries_rejected_total", &[], snap.rejected);
    p.header("uo_query_rows_total", "counter", "Result rows returned by successful queries.");
    p.sample("uo_query_rows_total", &[], snap.rows);
    p.header("uo_queries_by_type_total", "counter", "Successful queries by query type.");
    for (qt, n) in &snap.by_type {
        p.sample("uo_queries_by_type_total", &[("type", &qt.to_string())], *n);
    }

    // -- Plan cache --------------------------------------------------------
    p.header("uo_plan_cache_capacity", "gauge", "Maximum cached plans.");
    p.sample("uo_plan_cache_capacity", &[], state.cfg.cache_capacity as u64);
    p.header("uo_plan_cache_entries", "gauge", "Plans currently cached.");
    p.sample("uo_plan_cache_entries", &[], state.cache.len() as u64);
    p.header("uo_plan_cache_bytes", "gauge", "Approximate plan-cache heap bytes.");
    p.sample("uo_plan_cache_bytes", &[], state.cache.approx_bytes());
    p.header("uo_plan_cache_lookups_total", "counter", "Plan-cache lookups by outcome.");
    p.sample("uo_plan_cache_lookups_total", &[("outcome", "hit")], cache_hits);
    p.sample("uo_plan_cache_lookups_total", &[("outcome", "miss")], cache_misses - cache_stale);
    p.sample("uo_plan_cache_lookups_total", &[("outcome", "stale")], cache_stale);

    // -- Updates -----------------------------------------------------------
    p.header("uo_updates_total", "counter", "Update requests accepted for execution.");
    p.sample("uo_updates_total", &[], state.updates_total.load(Ordering::Relaxed));
    p.header("uo_update_errors_total", "counter", "Updates that failed to parse or execute.");
    p.sample("uo_update_errors_total", &[], state.update_errors.load(Ordering::Relaxed));
    p.header("uo_updates_cancelled_total", "counter", "Updates cancelled and rolled back.");
    p.sample("uo_updates_cancelled_total", &[], state.updates_cancelled.load(Ordering::Relaxed));
    p.header("uo_journal_errors_total", "counter", "WAL journal failures (rolled back).");
    p.sample("uo_journal_errors_total", &[], state.journal_errors.load(Ordering::Relaxed));

    // -- Store tiers -------------------------------------------------------
    p.header("uo_store_levels", "gauge", "LSM levels in the published snapshot.");
    p.sample("uo_store_levels", &[], tiers.levels as u64);
    p.header("uo_store_runs", "gauge", "Sorted runs across all levels.");
    p.sample("uo_store_runs", &[], tiers.runs as u64);
    p.header("uo_store_mem_rows", "gauge", "Rows held in memory-resident tiers.");
    p.sample("uo_store_mem_rows", &[], tiers.mem_rows as u64);
    p.header("uo_store_disk_rows", "gauge", "Rows held in disk-resident tiers.");
    p.sample("uo_store_disk_rows", &[], tiers.disk_rows as u64);
    p.header("uo_store_tombstones", "gauge", "Delete tombstones awaiting compaction.");
    p.sample("uo_store_tombstones", &[], tiers.tombstones as u64);
    p.header("uo_store_mem_bytes", "gauge", "Triple-row bytes resident in memory.");
    p.sample("uo_store_mem_bytes", &[], tiers.mem_bytes());
    p.header("uo_store_disk_bytes", "gauge", "Triple-row bytes resident on disk.");
    p.sample("uo_store_disk_bytes", &[], tiers.disk_bytes());
    p.header("uo_compactions_total", "counter", "Background compactions installed.");
    p.sample("uo_compactions_total", &[], state.compactions.load(Ordering::Relaxed));
    p.header("uo_compaction_rows_total", "counter", "Rows rewritten by compactions.");
    p.sample("uo_compaction_rows_total", &[], state.compaction_rows.load(Ordering::Relaxed));
    if let Some(pc) = store.page_cache_stats() {
        p.header("uo_page_cache_ops_total", "counter", "Page-cache accesses by outcome.");
        p.sample("uo_page_cache_ops_total", &[("outcome", "hit")], pc.hits);
        p.sample("uo_page_cache_ops_total", &[("outcome", "miss")], pc.misses);
        p.sample("uo_page_cache_ops_total", &[("outcome", "eviction")], pc.evictions);
    }

    // -- WAL (durable mode only) -------------------------------------------
    if let Some(info) = &state.durable {
        let m = &info.metrics;
        p.header("uo_wal_segments", "gauge", "Live WAL segment files.");
        p.sample("uo_wal_segments", &[], m.wal_segments.load(Ordering::Relaxed) as u64);
        p.header("uo_wal_bytes", "gauge", "Total bytes across live WAL segments.");
        p.sample("uo_wal_bytes", &[], m.wal_bytes.load(Ordering::Relaxed));
        p.header("uo_wal_records_total", "counter", "Records appended to the WAL.");
        p.sample("uo_wal_records_total", &[], m.wal_records.load(Ordering::Relaxed));
        p.header("uo_wal_synced_epoch", "gauge", "Highest epoch known durable on disk.");
        p.sample("uo_wal_synced_epoch", &[], m.synced_epoch.load(Ordering::Relaxed));
        p.header("uo_last_checkpoint_epoch", "gauge", "Epoch of the newest checkpoint.");
        p.sample("uo_last_checkpoint_epoch", &[], m.last_checkpoint_epoch.load(Ordering::Relaxed));
    }

    // -- Latency histograms ------------------------------------------------
    p.header(
        "uo_query_duration_nanos",
        "histogram",
        "End-to-end latency of successful queries (log2 buckets, nanoseconds).",
    );
    p.histogram("uo_query_duration_nanos", &[], &state.query_hist.snapshot());
    p.header(
        "uo_query_duration_by_type_nanos",
        "histogram",
        "Query latency split by query type (log2 buckets, nanoseconds).",
    );
    for &qt in &ALL_QUERY_TYPES {
        p.histogram(
            "uo_query_duration_by_type_nanos",
            &[("type", &qt.to_string())],
            &state.type_hists[type_index(qt)].snapshot(),
        );
    }
    p.header(
        "uo_update_duration_nanos",
        "histogram",
        "End-to-end latency of successful updates (log2 buckets, nanoseconds).",
    );
    p.histogram("uo_update_duration_nanos", &[], &state.update_hist.snapshot());
    if let Some(info) = &state.durable {
        p.header(
            "uo_wal_fsync_duration_nanos",
            "histogram",
            "WAL fsync latency (log2 buckets, nanoseconds).",
        );
        p.histogram("uo_wal_fsync_duration_nanos", &[], &info.metrics.fsync_hist.snapshot());
        p.header(
            "uo_commit_duration_nanos",
            "histogram",
            "Durable commit latency: apply + journal + fsync (log2 buckets, nanoseconds).",
        );
        p.histogram("uo_commit_duration_nanos", &[], &info.metrics.commit_hist.snapshot());
    }

    // -- Tracing -----------------------------------------------------------
    p.header("uo_trace_enabled", "gauge", "1 when the span recorder is active.");
    p.sample("uo_trace_enabled", &[], u64::from(state.tracer.is_on()));
    p.header("uo_trace_events", "gauge", "Span/instant events currently buffered.");
    p.sample("uo_trace_events", &[], state.tracer.event_count() as u64);
    p.header("uo_trace_dropped_total", "counter", "Trace events dropped by full rings.");
    p.sample("uo_trace_dropped_total", &[], state.tracer.dropped());

    // -- Background-task health --------------------------------------------
    let now = unix_ms();
    let maintenance_expected =
        state.durable.is_some() || (state.writer.is_some() && state.cfg.compact_fan_in > 0);
    let heartbeat_age_ms =
        now.saturating_sub(state.health.last_maintenance_unix_ms.load(Ordering::Relaxed));
    let consecutive = state.health.consecutive_errors.load(Ordering::Relaxed);
    p.header("uo_health_degraded", "gauge", "1 when /healthz reports degraded.");
    p.sample(
        "uo_health_degraded",
        &[],
        u64::from(health_degraded(
            maintenance_expected && !state.shutting_down.load(Ordering::SeqCst),
            consecutive,
            heartbeat_age_ms,
            state.cfg.checkpoint_interval_ms,
        )),
    );
    p.header("uo_maintenance_errors_total", "counter", "Background maintenance errors.");
    p.sample(
        "uo_maintenance_errors_total",
        &[],
        state.health.maintenance_errors.load(Ordering::Relaxed),
    );
    p.header("uo_maintenance_heartbeat_age_ms", "gauge", "Milliseconds since the last pass.");
    p.sample("uo_maintenance_heartbeat_age_ms", &[], heartbeat_age_ms);
    if state.durable.is_some() {
        p.header("uo_checkpoint_age_ms", "gauge", "Milliseconds since the last checkpoint.");
        p.sample(
            "uo_checkpoint_age_ms",
            &[],
            now.saturating_sub(state.health.last_checkpoint_unix_ms.load(Ordering::Relaxed)),
        );
    }
    p.header("uo_compaction_backlog", "gauge", "Levels beyond the compaction fan-in.");
    p.sample(
        "uo_compaction_backlog",
        &[],
        if state.cfg.compact_fan_in > 0 {
            store.level_count().saturating_sub(state.cfg.compact_fan_in) as u64
        } else {
            0
        },
    );

    p.into_string()
}
