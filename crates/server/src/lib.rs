//! # uo-server — a concurrent SPARQL-over-HTTP endpoint.
//!
//! Implements the query half of the W3C SPARQL 1.1 Protocol over a
//! hand-rolled HTTP/1.1 server on [`std::net::TcpListener`] (the build
//! environment has no registry access, so no hyper/tokio — a thread-pool
//! accept loop in the spirit of `uo_par`'s scoped workers). Many concurrent
//! clients multiplex over one shared immutable [`TripleStore`]:
//!
//! - `GET /sparql?query=…` and `POST /sparql` (`application/sparql-query`
//!   or form-encoded bodies) with content negotiation between SPARQL JSON
//!   results, TSV, and a debug text table;
//! - a bounded LRU **plan cache** keyed on canonicalized query text
//!   ([`cache::PlanCache`]) — repeat queries skip BE-tree construction and
//!   optimization and go straight to `try_execute_prepared` (raw text is
//!   still parsed once per request to compute the canonical key);
//! - **admission control**: at most `max_inflight` queries execute at once
//!   (503 + `Retry-After` beyond that) and every query carries a wall-clock
//!   deadline enforced cooperatively at BGP-evaluation boundaries
//!   ([`uo_core::Cancellation`]);
//! - `GET /metrics` (JSON counters via [`uo_core::QueryCounters`]) and
//!   `GET /healthz`.
//!
//! Responses are deterministic: the JSON/TSV serializations are exactly
//! `uo_sparql::results_json`/`results_tsv` of the same rows a direct
//! [`uo_core::run_query`] returns, so a response body is byte-identical to
//! an in-process run of the same query.

pub mod cache;
pub mod http;

pub use cache::PlanCache;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uo_core::{
    optimize_prepared, prepare_parsed, query_type, try_execute_prepared, Cancellation,
    QueryCounters, Strategy,
};
use uo_engine::{BgpEngine, BinaryJoinEngine, WcoEngine};
use uo_store::TripleStore;

/// Which BGP engine backs the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// gStore-style worst-case-optimal joins.
    Wco,
    /// Jena-style binary hash joins.
    Binary,
}

impl EngineChoice {
    fn build(self, threads: usize) -> Box<dyn BgpEngine> {
        match self {
            EngineChoice::Wco => Box::new(WcoEngine::with_threads(threads)),
            EngineChoice::Binary => Box::new(BinaryJoinEngine::with_threads(threads)),
        }
    }
}

/// Endpoint configuration; [`Default`] gives sensible interactive values.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interface to bind ("127.0.0.1" by default).
    pub host: String,
    /// Connection-handling worker threads (each serves one request at a
    /// time; also the upper bound on concurrently *executing* queries).
    pub threads: usize,
    /// Worker count inside each query evaluation (`1` = sequential BGP
    /// evaluation, the right default when `threads` already saturates the
    /// host's cores with independent queries).
    pub engine_threads: usize,
    /// Which BGP engine evaluates queries.
    pub engine: EngineChoice,
    /// Optimization strategy applied to every query.
    pub strategy: Strategy,
    /// Plan-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Admission-control limit on in-flight queries (requests beyond it get
    /// 503 + `Retry-After`).
    pub max_inflight: usize,
    /// Default per-query wall-clock deadline in ms (requests may lower or
    /// raise it via the `timeout` parameter, up to `max_timeout_ms`).
    pub default_timeout_ms: u64,
    /// Upper bound on the per-request `timeout` parameter.
    pub max_timeout_ms: u64,
    /// Socket read timeout (slow/stalled clients are dropped after this).
    pub read_timeout_ms: u64,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            threads: 4,
            engine_threads: 1,
            engine: EngineChoice::Wco,
            strategy: Strategy::Full,
            cache_capacity: 256,
            max_inflight: 32,
            default_timeout_ms: 10_000,
            max_timeout_ms: 60_000,
            read_timeout_ms: 10_000,
            max_body_bytes: 1 << 20,
        }
    }
}

/// Negotiated response format for query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// SPARQL 1.1 Query Results JSON (`application/sparql-results+json`).
    Json,
    /// SPARQL 1.1 Query Results TSV (`text/tab-separated-values`).
    Tsv,
    /// Human-readable debug table (`text/plain`).
    Debug,
}

impl Format {
    fn content_type(self) -> &'static str {
        match self {
            Format::Json => "application/sparql-results+json",
            Format::Tsv => "text/tab-separated-values; charset=utf-8",
            Format::Debug => "text/plain; charset=utf-8",
        }
    }
}

/// Picks a result format from an `Accept` header (first supported media
/// range in client order wins; absent header or `*/*` means JSON).
fn negotiate(accept: Option<&str>) -> Option<Format> {
    let Some(accept) = accept else { return Some(Format::Json) };
    for range in accept.split(',') {
        let media = range.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
        match media.as_str() {
            "application/sparql-results+json"
            | "application/json"
            | "application/*"
            | "*/*"
            | "" => return Some(Format::Json),
            "text/tab-separated-values" => return Some(Format::Tsv),
            "text/plain" | "text/*" => return Some(Format::Debug),
            _ => {}
        }
    }
    None
}

/// Shared, immutable-after-start endpoint state.
struct ServerState {
    store: Arc<TripleStore>,
    engine: Box<dyn BgpEngine>,
    cfg: ServerConfig,
    cache: PlanCache,
    counters: QueryCounters,
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    query_cancel: Arc<AtomicBool>,
    started: Instant,
}

/// Decrements the in-flight gauge when a query finishes (however it ends).
struct AdmissionGuard<'a>(&'a ServerState);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running endpoint. Dropping the handle shuts the server down
/// gracefully (stops accepting, drains queued connections, joins workers).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 at start for an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let queued and in-flight requests
    /// finish (long-running evaluations are cancelled at their next BGP
    /// boundary), join all threads. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.state.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.query_cancel.store(true, Ordering::Relaxed);
        // Wake the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds `host:port` (port 0 = ephemeral) and starts the accept loop plus
/// `cfg.threads` connection workers. The store must already be built.
pub fn start(store: Arc<TripleStore>, cfg: ServerConfig, port: u16) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind((cfg.host.as_str(), port))?;
    let addr = listener.local_addr()?;
    let threads = cfg.threads.max(1);
    let state = Arc::new(ServerState {
        engine: cfg.engine.build(cfg.engine_threads.max(1)),
        cache: PlanCache::new(cfg.cache_capacity),
        counters: QueryCounters::default(),
        inflight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        query_cancel: Arc::new(AtomicBool::new(false)),
        started: Instant::now(),
        store,
        cfg,
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("uo-server-worker-{i}"))
                .spawn(move || loop {
                    // Take the next connection, releasing the lock before
                    // handling it so workers run concurrently.
                    let next = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();
                    match next {
                        Ok(stream) => {
                            // A panicking request (engine bug, adversarial
                            // query) must cost one connection, not a worker
                            // thread for the server's lifetime.
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle_connection(&state, stream)
                                }));
                            if caught.is_err() {
                                QueryCounters::bump(&state.counters.panics);
                            }
                        }
                        Err(_) => break, // acceptor gone: drained and done
                    }
                })
                .expect("failed to spawn server worker")
        })
        .collect();

    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("uo-server-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if state.shutting_down.load(Ordering::SeqCst) {
                        break; // wake-up connection (or racing client) dropped
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            // Transient accept errors (EMFILE, aborted
                            // handshakes) should not kill the endpoint.
                            continue;
                        }
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
            .expect("failed to spawn server acceptor")
    };

    Ok(ServerHandle { addr, state, acceptor: Some(acceptor), workers })
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(state.cfg.read_timeout_ms.max(1))));
    let _ = stream.set_nodelay(true);
    let head = match http::read_head(&mut stream) {
        Ok(Some(head)) => head,
        Ok(None) => return, // client connected and left (shutdown wake-up)
        Err(_) => {
            let _ = respond_text(&mut stream, 400, "Bad Request", "malformed request head\n");
            return;
        }
    };
    let _ = route(state, &mut stream, &head);
}

fn respond_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str) -> io::Result<()> {
    http::write_response(stream, status, reason, "text/plain; charset=utf-8", &[], body.as_bytes())
}

fn route(state: &ServerState, stream: &mut TcpStream, head: &http::Head) -> io::Result<()> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => respond_text(stream, 200, "OK", "ok\n"),
        ("GET", "/metrics") => http::write_response(
            stream,
            200,
            "OK",
            "application/json",
            &[],
            metrics_json(state).as_bytes(),
        ),
        ("GET", "/sparql") | ("POST", "/sparql") => handle_sparql(state, stream, head),
        ("GET", "/") => respond_text(
            stream,
            200,
            "OK",
            "sparql-uo endpoint: GET/POST /sparql, GET /metrics, GET /healthz\n",
        ),
        (_, "/sparql") | (_, "/healthz") | (_, "/metrics") | (_, "/") => {
            respond_text(stream, 405, "Method Not Allowed", "method not allowed\n")
        }
        _ => respond_text(stream, 404, "Not Found", "unknown path\n"),
    }
}

fn handle_sparql(state: &ServerState, stream: &mut TcpStream, head: &http::Head) -> io::Result<()> {
    // Content negotiation first: a 406 should not consume an admission slot.
    let Some(format) = negotiate(head.header("accept")) else {
        return respond_text(
            stream,
            406,
            "Not Acceptable",
            "supported: application/sparql-results+json, text/tab-separated-values, text/plain\n",
        );
    };

    // A client announcing `Expect: 100-continue` (curl does for bodies
    // over ~1 KiB) has not sent its body yet; everyone else may already be
    // mid-body, so early error responses must drain what was sent (closing
    // with unread data RSTs the response away).
    let expects_continue =
        head.header("expect").is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"));
    let pending_body = if head.method == "POST" && !expects_continue {
        head.content_length().unwrap_or(0)
    } else {
        0
    };

    // Admission control. The slot covers body read + execution, so a client
    // that trickles its body in holds (and exhausts) capacity — exactly the
    // resource the limit protects.
    if state.inflight.fetch_add(1, Ordering::SeqCst) >= state.cfg.max_inflight {
        state.inflight.fetch_sub(1, Ordering::SeqCst);
        QueryCounters::bump(&state.counters.rejected);
        http::drain(stream, pending_body);
        return http::write_response(
            stream,
            503,
            "Service Unavailable",
            "text/plain; charset=utf-8",
            &[("Retry-After", "1")],
            b"overloaded: too many queries in flight\n",
        );
    }
    let _guard = AdmissionGuard(state);

    // Extract the query text and optional per-request timeout.
    let mut query_text: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut read_params = |params: Vec<(String, String)>| {
        for (k, v) in params {
            match k.as_str() {
                "query" => query_text = Some(v),
                "timeout" => timeout_ms = v.parse().ok(),
                _ => {}
            }
        }
    };
    if head.method == "GET" {
        read_params(http::parse_form(&head.query));
    } else {
        let len = head.content_length().unwrap_or(0);
        if len > state.cfg.max_body_bytes {
            http::drain(stream, pending_body);
            return respond_text(stream, 413, "Payload Too Large", "request body too large\n");
        }
        if expects_continue {
            http::write_continue(stream)?;
        }
        let body = match http::read_body(stream, len) {
            Ok(b) => b,
            Err(_) => return respond_text(stream, 400, "Bad Request", "truncated request body\n"),
        };
        // Per-request parameters may also ride on the POST target's query
        // string (the SPARQL protocol allows it for sparql-query bodies).
        read_params(http::parse_form(&head.query));
        let content_type =
            head.header("content-type").unwrap_or("").split(';').next().unwrap_or("").trim();
        match content_type {
            "application/sparql-query" => {
                query_text = Some(String::from_utf8_lossy(&body).into_owned());
            }
            "application/x-www-form-urlencoded" | "" => {
                read_params(http::parse_form(&String::from_utf8_lossy(&body)));
            }
            other => {
                let msg = format!("unsupported content type {other:?}\n");
                return respond_text(stream, 415, "Unsupported Media Type", &msg);
            }
        }
    }
    let Some(text) = query_text else {
        return respond_text(stream, 400, "Bad Request", "missing 'query' parameter\n");
    };

    QueryCounters::bump(&state.counters.queries);

    // Parse (needed for the canonical cache key either way).
    let parsed = match uo_sparql::parse(&text) {
        Ok(q) => q,
        Err(e) => {
            QueryCounters::bump(&state.counters.parse_errors);
            let msg = format!("parse error: {e}\n");
            return respond_text(stream, 400, "Bad Request", &msg);
        }
    };
    let qtype = query_type(&parsed.body);
    let canonical = uo_sparql::serialize(&parsed);

    // Plan cache: hit ⇒ skip plan construction + optimization.
    let prepared: Arc<uo_core::Prepared> = match state.cache.get(&canonical) {
        Some((prepared, _)) => {
            QueryCounters::bump(&state.counters.cache_hits);
            prepared
        }
        None => {
            QueryCounters::bump(&state.counters.cache_misses);
            let mut prepared = prepare_parsed(&state.store, parsed);
            let (outcome, _) = optimize_prepared(
                &state.store,
                state.engine.as_ref(),
                &mut prepared,
                state.cfg.strategy,
            );
            let prepared = Arc::new(prepared);
            state.cache.insert(canonical, Arc::clone(&prepared), outcome);
            prepared
        }
    };

    // Per-query deadline (cooperative, checked at BGP boundaries), plus the
    // endpoint-wide cancel flag raised on shutdown.
    let timeout = Duration::from_millis(
        timeout_ms.unwrap_or(state.cfg.default_timeout_ms).min(state.cfg.max_timeout_ms),
    );
    let cancel = Cancellation::after(timeout).with_flag(Arc::clone(&state.query_cancel));

    let projection = prepared.query.projection();
    let report = match try_execute_prepared(
        &state.store,
        state.engine.as_ref(),
        &prepared,
        state.cfg.strategy,
        uo_par::Parallelism::new(state.cfg.engine_threads.max(1)),
        &cancel,
    ) {
        Ok(report) => report,
        Err(_) => {
            QueryCounters::bump(&state.counters.cancelled);
            return respond_text(
                stream,
                408,
                "Request Timeout",
                "query deadline exceeded (raise the 'timeout' parameter)\n",
            );
        }
    };
    state.counters.record_ok(qtype, report.results.len());

    let body = match format {
        Format::Json => uo_sparql::results_json(&projection, &report.results),
        Format::Tsv => uo_sparql::results_tsv(&projection, &report.results),
        Format::Debug => debug_table(&projection, &report.results),
    };
    http::write_response(stream, 200, "OK", format.content_type(), &[], body.as_bytes())
}

/// The CLI-style human-readable table (debug format).
fn debug_table(vars: &[String], rows: &[Vec<Option<uo_rdf::Term>>]) -> String {
    let mut out = String::new();
    out.push_str(&vars.iter().map(|v| format!("?{v}")).collect::<Vec<_>>().join("\t"));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|t| t.as_ref().map(|t| t.to_string()).unwrap_or_else(|| "—".into()))
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

/// Renders the `/metrics` JSON document.
fn metrics_json(state: &ServerState) -> String {
    let snap = state.counters.snapshot();
    let (cache_hits, cache_misses) = state.cache.stats();
    let by_type: Vec<String> = snap
        .by_type
        .iter()
        .map(|(qt, n)| format!("\"{}\": {n}", uo_json::escape(&qt.to_string())))
        .collect();
    format!(
        "{{\n  \"schema\": \"uo-server-metrics/1\",\n  \"uptime_s\": {},\n  \
         \"engine\": \"{}\",\n  \"strategy\": \"{}\",\n  \"threads\": {},\n  \
         \"engine_threads\": {},\n  \"store_triples\": {},\n  \"inflight\": {},\n  \
         \"max_inflight\": {},\n  \"plan_cache\": {{\"capacity\": {}, \"entries\": {}, \
         \"hits\": {cache_hits}, \"misses\": {cache_misses}}},\n  \
         \"queries\": {{\"admitted\": {}, \"ok\": {}, \"parse_errors\": {}, \
         \"cancelled\": {}, \"rejected\": {}, \"rows\": {}, \"panics\": {}}},\n  \
         \"by_type\": {{{}}}\n}}\n",
        uo_json::num(state.started.elapsed().as_secs_f64()),
        uo_json::escape(state.engine.name()),
        uo_json::escape(state.cfg.strategy.label()),
        state.cfg.threads,
        state.cfg.engine_threads,
        state.store.len(),
        state.inflight.load(Ordering::SeqCst),
        state.cfg.max_inflight,
        state.cfg.cache_capacity,
        state.cache.len(),
        snap.queries,
        snap.ok,
        snap.parse_errors,
        snap.cancelled,
        snap.rejected,
        snap.rows,
        snap.panics,
        by_type.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_prefers_first_supported_range() {
        assert_eq!(negotiate(None), Some(Format::Json));
        assert_eq!(negotiate(Some("*/*")), Some(Format::Json));
        assert_eq!(negotiate(Some("application/sparql-results+json")), Some(Format::Json));
        assert_eq!(negotiate(Some("application/json; q=0.9")), Some(Format::Json));
        assert_eq!(negotiate(Some("text/tab-separated-values")), Some(Format::Tsv));
        assert_eq!(negotiate(Some("text/plain, application/json")), Some(Format::Debug));
        assert_eq!(negotiate(Some("text/csv, text/tab-separated-values")), Some(Format::Tsv));
        assert_eq!(negotiate(Some("application/xml")), None);
    }

    #[test]
    fn debug_table_renders_unbound() {
        let rows = vec![vec![Some(uo_rdf::Term::iri("http://a")), None]];
        let got = debug_table(&["x".to_string(), "y".to_string()], &rows);
        assert_eq!(got, "?x\t?y\n<http://a>\t—\n");
    }
}
