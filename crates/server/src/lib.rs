//! # uo-server — a concurrent SPARQL-over-HTTP endpoint with live updates.
//!
//! Implements the query + update halves of the W3C SPARQL 1.1 Protocol over
//! a hand-rolled HTTP/1.1 server on [`std::net::TcpListener`] (the build
//! environment has no registry access, so no hyper/tokio — a thread-pool
//! accept loop in the spirit of `uo_par`'s scoped workers). Many concurrent
//! clients multiplex over one MVCC store:
//!
//! - **snapshot isolation**: each query request clones the current
//!   `Arc<Snapshot>` exactly once at admission and answers from it
//!   end-to-end, so a query in flight during a commit returns answers
//!   consistent with its admission-time version; writers are serialized
//!   behind a mutex and publish by swapping the shared snapshot handle;
//! - `GET /sparql?query=…` and `POST /sparql` (`application/sparql-query`
//!   or form-encoded bodies) with content negotiation between SPARQL JSON
//!   results, TSV, and a debug text table;
//! - `POST /update` (`application/sparql-update` or form-encoded,
//!   [`ServerConfig::writable`] only): `INSERT DATA`, `DELETE DATA` and
//!   single-BGP `DELETE WHERE`, executed via [`uo_core::run_update`];
//! - a bounded LRU **plan cache** keyed on canonicalized query text and
//!   tagged with the snapshot **epoch** it was planned at
//!   ([`cache::PlanCache`]) — repeat queries skip BE-tree construction and
//!   optimization, and a commit invalidates stale plans without flushing
//!   the cache structure;
//! - **admission control**: at most `max_inflight` requests execute at once
//!   (503 + `Retry-After` beyond that) and every query carries a wall-clock
//!   deadline enforced cooperatively at BGP-evaluation boundaries
//!   ([`uo_core::Cancellation`]);
//! - `GET /metrics` (JSON counters incl. `triples`, `snapshot_epoch`,
//!   `updates`, the tiered-`store` block, the durable-mode `wal` block, the
//!   `latency` block of log₂-bucketed histograms, and the v6 `resources` +
//!   `health` blocks) — the same counters are served as **Prometheus text
//!   exposition 0.0.4** when the `Accept` header prefers `text/plain` or
//!   `application/openmetrics-text`; `GET /healthz` reports checkpoint age
//!   and WAL backlog and degrades to 503 when the maintenance thread is
//!   stalled or erroring;
//! - **structured tracing** ([`ServerConfig::tracer`]): when enabled, the
//!   connection lifecycle (accept → read head → admission → body →
//!   parse/plan/execute/serialize → write), the commit pipeline (delta
//!   merge, WAL append + fsync, publish) and the background maintenance
//!   jobs record spans into bounded lock-free ring buffers, exported as
//!   Chrome trace-event JSON at `GET /stats/trace` (Perfetto-loadable);
//! - **observability** (see `docs/OBSERVABILITY.md`): every query/update
//!   response carries a unique `X-UO-Request-Id`; `?profile=1` (or
//!   `X-UO-Profile: 1`) attaches an EXPLAIN ANALYZE `"profile"` block —
//!   per-phase wall times plus the operator span tree with actual vs
//!   estimated cardinalities — to the JSON results; `GET /stats/plans`
//!   reports per-cached-plan observed stats (hits, cumulative exec time,
//!   actual-over-estimated root cardinality); with
//!   [`ServerConfig::slow_query_ms`] set, queries over the threshold land
//!   in a bounded ring at `GET /stats/slow` and as single-line stderr
//!   records;
//! - a background **maintenance thread**: once the tiered run stack of the
//!   published snapshot reaches `compact_fan_in` levels it is folded into
//!   one — off the update path, installed only if no commit raced — keeping
//!   read amplification bounded on long-running writable endpoints;
//! - optional **durability** ([`start_durable`]): updates are applied,
//!   journaled to a segmented CRC-checksummed write-ahead log and fsynced
//!   per policy *before* the new snapshot is published or the response
//!   written, so an acknowledged `POST /update` survives `kill -9`; the
//!   maintenance thread additionally persists incremental checkpoints
//!   (immutable run files plus a small manifest) and retires covered log
//!   segments.
//!
//! Responses are deterministic: the JSON/TSV serializations are exactly
//! `uo_sparql::results_json`/`results_tsv` of the same rows a direct
//! [`uo_core::run_query`] returns against the same snapshot, so a response
//! body is byte-identical to an in-process run of the same query.

pub mod cache;
pub mod http;
mod prom;

pub use cache::{PlanCache, PlanStatsSnapshot};

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use uo_core::{
    estimate_root_rows, optimize_prepared, prepare_parsed, query_type,
    try_execute_prepared_profiled, try_run_update, try_run_update_durable, Cancellation,
    DurableUpdateError, QueryCounters, QueryType, Strategy,
};
use uo_engine::{BgpEngine, BinaryJoinEngine, WcoEngine};
use uo_obs::{
    CacheOutcome, Histogram, Profiler, QueryProfile, RequestIds, SlowEntry, SlowLog, Tracer,
};
use uo_store::{durable, DurableMetrics, DurableStore, Snapshot, StoreWriter};

/// Which BGP engine backs the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// gStore-style worst-case-optimal joins.
    Wco,
    /// Jena-style binary hash joins.
    Binary,
}

impl EngineChoice {
    fn build(self, threads: usize) -> Box<dyn BgpEngine> {
        match self {
            EngineChoice::Wco => Box::new(WcoEngine::with_threads(threads)),
            EngineChoice::Binary => Box::new(BinaryJoinEngine::with_threads(threads)),
        }
    }
}

/// Endpoint configuration; [`Default`] gives sensible interactive values.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interface to bind ("127.0.0.1" by default).
    pub host: String,
    /// Connection-handling worker threads (each serves one request at a
    /// time; also the upper bound on concurrently *executing* queries).
    pub threads: usize,
    /// Worker count inside each query evaluation (`1` = sequential BGP
    /// evaluation, the right default when `threads` already saturates the
    /// host's cores with independent queries).
    pub engine_threads: usize,
    /// Which BGP engine evaluates queries.
    pub engine: EngineChoice,
    /// Optimization strategy applied to every query.
    pub strategy: Strategy,
    /// Plan-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Admission-control limit on in-flight queries (requests beyond it get
    /// 503 + `Retry-After`).
    pub max_inflight: usize,
    /// Default per-query wall-clock deadline in ms (requests may lower or
    /// raise it via the `timeout` parameter, up to `max_timeout_ms`).
    pub default_timeout_ms: u64,
    /// Upper bound on the per-request `timeout` parameter.
    pub max_timeout_ms: u64,
    /// Socket read timeout (slow/stalled clients are dropped after this).
    pub read_timeout_ms: u64,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Accept SPARQL Update requests on `POST /update`. Off by default: a
    /// read-only endpoint cannot be mutated by any client.
    pub writable: bool,
    /// Durable mode only ([`start_durable`]): background-checkpoint once
    /// the published epoch is this far past the last checkpoint.
    pub checkpoint_every: u64,
    /// Durable mode only: how often the maintenance thread wakes to look.
    pub checkpoint_interval_ms: u64,
    /// Writable endpoints: background-compact the tiered run stack once it
    /// is this many levels deep (0 disables compaction). Compaction runs
    /// outside the writer lock and installs with an epoch check, so it
    /// never blocks or races updates.
    pub compact_fan_in: usize,
    /// Slow-query threshold in milliseconds. `None` (the default) disables
    /// the slow-query log; `Some(ms)` captures every query whose
    /// end-to-end wall time reaches `ms` into the bounded ring served at
    /// `GET /stats/slow` and emits a single-line stderr record.
    pub slow_query_ms: Option<u64>,
    /// Span recorder threaded through the request, commit, and maintenance
    /// paths (see `uo_obs::Tracer`). The default [`Tracer::off`] records
    /// nothing and costs one branch per span site; an enabled tracer is
    /// exported at `GET /stats/trace` as Chrome trace-event JSON.
    pub tracer: Tracer,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            threads: 4,
            engine_threads: 1,
            engine: EngineChoice::Wco,
            strategy: Strategy::Full,
            cache_capacity: 256,
            max_inflight: 32,
            default_timeout_ms: 10_000,
            max_timeout_ms: 60_000,
            read_timeout_ms: 10_000,
            max_body_bytes: 1 << 20,
            writable: false,
            checkpoint_every: 64,
            checkpoint_interval_ms: 500,
            compact_fan_in: 8,
            slow_query_ms: None,
            tracer: Tracer::off(),
        }
    }
}

/// Negotiated response format for query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// SPARQL 1.1 Query Results JSON (`application/sparql-results+json`).
    Json,
    /// SPARQL 1.1 Query Results TSV (`text/tab-separated-values`).
    Tsv,
    /// Human-readable debug table (`text/plain`).
    Debug,
}

impl Format {
    fn content_type(self) -> &'static str {
        match self {
            Format::Json => "application/sparql-results+json",
            Format::Tsv => "text/tab-separated-values; charset=utf-8",
            Format::Debug => "text/plain; charset=utf-8",
        }
    }
}

/// Picks a result format from an `Accept` header (first supported media
/// range in client order wins; absent header or `*/*` means JSON).
fn negotiate(accept: Option<&str>) -> Option<Format> {
    let Some(accept) = accept else { return Some(Format::Json) };
    for range in accept.split(',') {
        let media = range.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
        match media.as_str() {
            "application/sparql-results+json"
            | "application/json"
            | "application/*"
            | "*/*"
            | "" => return Some(Format::Json),
            "text/tab-separated-values" => return Some(Format::Tsv),
            "text/plain" | "text/*" => return Some(Format::Debug),
            _ => {}
        }
    }
    None
}

/// The mutation endpoint behind the writer mutex: a plain in-memory
/// writer, or a crash-safe [`DurableStore`] whose commits are journaled
/// before they are published or acknowledged.
enum WriteBackend {
    Memory(StoreWriter),
    Durable(Box<DurableStore>),
}

/// Durable-mode bookkeeping the request path and maintenance thread share.
struct DurableInfo {
    /// Lock-free gauges mirrored out of the [`DurableStore`].
    metrics: Arc<DurableMetrics>,
    /// Fsync policy label for `/metrics`.
    fsync: String,
    /// The data directory (checkpoint files are written here, outside the
    /// writer lock).
    dir: PathBuf,
}

/// Shared endpoint state. Everything is immutable after start except the
/// current snapshot handle (swapped by commits) and the writer delta.
struct ServerState {
    /// The latest committed snapshot. Readers clone the `Arc` once per
    /// request (a momentary read lock around a pointer clone); the update
    /// path swaps it after each commit. Queries never hold the lock during
    /// evaluation, so writers cannot block readers and vice versa.
    snapshot: RwLock<Arc<Snapshot>>,
    /// The single mutation endpoint, present when the config is writable.
    /// The mutex serializes updates; its base always equals the latest
    /// committed snapshot because only this writer commits.
    writer: Option<Mutex<WriteBackend>>,
    /// Present in durable mode.
    durable: Option<DurableInfo>,
    engine: Box<dyn BgpEngine>,
    cfg: ServerConfig,
    cache: PlanCache,
    counters: QueryCounters,
    updates_total: AtomicU64,
    update_errors: AtomicU64,
    updates_cancelled: AtomicU64,
    journal_errors: AtomicU64,
    /// Background compactions installed, and the rows they rewrote.
    compactions: AtomicU64,
    compaction_rows: AtomicU64,
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    query_cancel: Arc<AtomicBool>,
    /// Wakes the maintenance thread early (on shutdown).
    checkpoint_signal: (Mutex<()>, Condvar),
    started: Instant,
    /// Mints the `X-UO-Request-Id` values (prefix seeded from the start
    /// time so ids from different server incarnations don't collide).
    request_ids: RequestIds,
    /// Ring of recent slow queries (pushed only when
    /// [`ServerConfig::slow_query_ms`] is set; served at `/stats/slow`).
    slow_log: SlowLog,
    /// End-to-end latency of successful queries, in nanoseconds.
    query_hist: Histogram,
    /// End-to-end latency of successful updates, in nanoseconds.
    update_hist: Histogram,
    /// Query latency split by [`QueryType`] (indexed by [`type_index`]).
    type_hists: [Histogram; 4],
    /// Span recorder shared with the write backend (off unless the config
    /// enabled it).
    tracer: Tracer,
    /// Background-task health, feeding `/healthz` and `/metrics`.
    health: HealthState,
}

/// Liveness and error gauges of the background maintenance thread. All
/// timestamps are Unix milliseconds (via [`unix_ms`]), initialized to the
/// server's start so a freshly started endpoint is healthy.
#[derive(Debug)]
struct HealthState {
    /// Total maintenance errors (compaction, checkpoint write, checkpoint
    /// bookkeeping) since start.
    maintenance_errors: AtomicU64,
    /// Errors accumulated since the last clean maintenance pass; any
    /// non-zero value degrades `/healthz`.
    consecutive_errors: AtomicU64,
    /// When the maintenance loop last woke (its heartbeat).
    last_maintenance_unix_ms: AtomicU64,
    /// When the last successful checkpoint was written (start time until
    /// the first one).
    last_checkpoint_unix_ms: AtomicU64,
}

impl HealthState {
    fn new() -> HealthState {
        let now = unix_ms();
        HealthState {
            maintenance_errors: AtomicU64::new(0),
            consecutive_errors: AtomicU64::new(0),
            last_maintenance_unix_ms: AtomicU64::new(now),
            last_checkpoint_unix_ms: AtomicU64::new(now),
        }
    }
}

/// Whether the endpoint should report itself degraded: the maintenance
/// thread is expected but its heartbeat is far overdue (20 intervals, at
/// least 5 s — tolerant of long compactions), or its last pass errored.
/// Pure so the policy is unit-testable.
fn health_degraded(
    maintenance_expected: bool,
    consecutive_errors: u64,
    heartbeat_age_ms: u64,
    interval_ms: u64,
) -> bool {
    let stall_after = interval_ms.saturating_mul(20).max(5_000);
    (maintenance_expected && heartbeat_age_ms > stall_after) || consecutive_errors > 0
}

/// Entries the slow-query ring retains (oldest evicted beyond this).
const SLOW_LOG_CAPACITY: usize = 128;

/// Index of a [`QueryType`] in [`ServerState::type_hists`].
fn type_index(qt: QueryType) -> usize {
    match qt {
        QueryType::Bgp => 0,
        QueryType::U => 1,
        QueryType::O => 2,
        QueryType::UO => 3,
    }
}

/// All query types, in `type_index` order (for `/metrics` rendering).
const ALL_QUERY_TYPES: [QueryType; 4] = [QueryType::Bgp, QueryType::U, QueryType::O, QueryType::UO];

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

impl ServerState {
    /// The current snapshot — one `Arc` clone per request, no lock held
    /// afterwards.
    fn current_snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Decrements the in-flight gauge when a query finishes (however it ends).
struct AdmissionGuard<'a>(&'a ServerState);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Ends a span when dropped, so early-return error paths still record it:
/// a recorded child span must never point at a parent that was abandoned
/// unrecorded, or the exported trace would have dangling parent links.
struct SpanGuard<'a> {
    tracer: &'a Tracer,
    span: Option<uo_obs::trace::Span>,
}

impl<'a> SpanGuard<'a> {
    fn new(tracer: &'a Tracer, span: uo_obs::trace::Span) -> SpanGuard<'a> {
        SpanGuard { tracer, span: Some(span) }
    }

    /// The span id child spans parent at (0 when tracing is off).
    fn id(&self) -> u64 {
        self.span.map_or(0, |s| s.id)
    }

    /// Takes the span out for an explicit [`Tracer::end_with`] with args.
    fn take(mut self) -> uo_obs::trace::Span {
        self.span.take().expect("span already taken")
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.span.take() {
            self.tracer.end(span);
        }
    }
}

/// A running endpoint. Dropping the handle shuts the server down
/// gracefully (stops accepting, drains queued connections, joins workers).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 at start for an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let queued and in-flight requests
    /// finish (long-running evaluations are cancelled at their next BGP
    /// boundary), join all threads. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.state.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.query_cancel.store(true, Ordering::Relaxed);
        // Wake the acceptor if it is parked in accept(), and the
        // maintenance thread if it is parked in its interval wait. The
        // notify happens while holding the signal mutex: the maintenance
        // loop checks the shutdown flag under the same mutex before
        // waiting, so the wake can never land in the gap between its check
        // and its wait (a lost wakeup would stall this join a full
        // interval).
        let _ = TcpStream::connect(self.addr);
        {
            let _g = self.state.checkpoint_signal.0.lock().unwrap_or_else(PoisonError::into_inner);
            self.state.checkpoint_signal.1.notify_all();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers have drained: no more journal appends can happen. Force
        // the log to disk so `every-N` / `never` fsync policies lose
        // nothing across a graceful shutdown.
        if let Some(writer) = &self.state.writer {
            let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
            if let WriteBackend::Durable(ds) = &mut *w {
                if let Err(e) = ds.sync() {
                    eprintln!(
                        "wal sync on shutdown failed: {e} — updates journaled since the last \
                         fsync may not be on stable storage"
                    );
                }
            }
        }
        if let Some(maintenance) = self.maintenance.take() {
            let _ = maintenance.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds `host:port` (port 0 = ephemeral) and starts the accept loop plus
/// `cfg.threads` connection workers, serving `snapshot` (obtain one from
/// `TripleStore::snapshot()` after a build, or from a `StoreWriter`).
/// When `cfg.writable` is set the endpoint also accepts `POST /update`,
/// committing new snapshots on top of this one.
pub fn start(snapshot: Arc<Snapshot>, cfg: ServerConfig, port: u16) -> io::Result<ServerHandle> {
    let writer = cfg
        .writable
        .then(|| WriteBackend::Memory(StoreWriter::from_snapshot(Arc::clone(&snapshot))));
    start_inner(snapshot, writer, None, cfg, port)
}

/// [`start`] in **durable** mode: serves the store recovered into `ds`
/// (obtain one from [`uo_core::open_durable`]) and accepts `POST /update`
/// with the log-before-acknowledge discipline — a 200 means the update is
/// journaled at the store's fsync policy and survives `kill -9`. The
/// background maintenance thread persists an incremental checkpoint every
/// [`ServerConfig::checkpoint_every`] epochs and retires covered log
/// segments. Implies `writable`.
pub fn start_durable(ds: DurableStore, cfg: ServerConfig, port: u16) -> io::Result<ServerHandle> {
    let cfg = ServerConfig { writable: true, ..cfg };
    let snapshot = ds.snapshot();
    let info = DurableInfo {
        metrics: ds.metrics(),
        fsync: ds.options().fsync.label(),
        dir: ds.dir().to_path_buf(),
    };
    start_inner(snapshot, Some(WriteBackend::Durable(Box::new(ds))), Some(info), cfg, port)
}

fn start_inner(
    snapshot: Arc<Snapshot>,
    mut writer: Option<WriteBackend>,
    durable: Option<DurableInfo>,
    cfg: ServerConfig,
    port: u16,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind((cfg.host.as_str(), port))?;
    let addr = listener.local_addr()?;
    let threads = cfg.threads.max(1);
    // Thread the tracer into the write backend so commit-pipeline spans
    // (delta merge, WAL append/fsync) land in the same collector as the
    // request spans that parent them.
    if let Some(w) = &mut writer {
        match w {
            WriteBackend::Memory(mw) => mw.set_tracer(cfg.tracer.clone()),
            WriteBackend::Durable(ds) => ds.set_tracer(cfg.tracer.clone()),
        }
    }
    let state = Arc::new(ServerState {
        engine: cfg.engine.build(cfg.engine_threads.max(1)),
        cache: PlanCache::new(cfg.cache_capacity),
        counters: QueryCounters::default(),
        updates_total: AtomicU64::new(0),
        update_errors: AtomicU64::new(0),
        updates_cancelled: AtomicU64::new(0),
        journal_errors: AtomicU64::new(0),
        compactions: AtomicU64::new(0),
        compaction_rows: AtomicU64::new(0),
        inflight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        query_cancel: Arc::new(AtomicBool::new(false)),
        checkpoint_signal: (Mutex::new(()), Condvar::new()),
        started: Instant::now(),
        request_ids: RequestIds::new(
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
                ^ u64::from(std::process::id()),
        ),
        slow_log: SlowLog::new(SLOW_LOG_CAPACITY),
        query_hist: Histogram::new(),
        update_hist: Histogram::new(),
        type_hists: std::array::from_fn(|_| Histogram::new()),
        tracer: cfg.tracer.clone(),
        health: HealthState::new(),
        snapshot: RwLock::new(snapshot),
        writer: writer.map(Mutex::new),
        durable,
        cfg,
    });

    let needs_maintenance =
        state.durable.is_some() || (state.writer.is_some() && state.cfg.compact_fan_in > 0);
    let maintenance = needs_maintenance.then(|| {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("uo-server-maintenance".to_string())
            .spawn(move || run_maintenance(&state))
            .expect("failed to spawn maintenance thread")
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("uo-server-worker-{i}"))
                .spawn(move || loop {
                    // Take the next connection, releasing the lock before
                    // handling it so workers run concurrently.
                    let next = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();
                    match next {
                        Ok(stream) => {
                            // A panicking request (engine bug, adversarial
                            // query) must cost one connection, not a worker
                            // thread for the server's lifetime.
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle_connection(&state, stream)
                                }));
                            if caught.is_err() {
                                QueryCounters::bump(&state.counters.panics);
                            }
                        }
                        Err(_) => break, // acceptor gone: drained and done
                    }
                })
                .expect("failed to spawn server worker")
        })
        .collect();

    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("uo-server-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if state.shutting_down.load(Ordering::SeqCst) {
                        break; // wake-up connection (or racing client) dropped
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            // Transient accept errors (EMFILE, aborted
                            // handshakes) should not kill the endpoint.
                            continue;
                        }
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
            .expect("failed to spawn server acceptor")
    };

    Ok(ServerHandle { addr, state, acceptor: Some(acceptor), maintenance, workers })
}

/// The background maintenance loop. Every interval it performs two
/// independent jobs, both designed to stay off the update path's critical
/// section:
///
/// - **compaction** (writable endpoints, `compact_fan_in > 0`): when the
///   published snapshot's run stack reaches `compact_fan_in` levels, fold
///   it into one level *outside* the writer lock (snapshots are
///   immutable), then briefly take the lock and install the result with an
///   epoch check — if an update committed meanwhile, the install is
///   refused and compaction simply retries next tick;
/// - **checkpointing** (durable mode): if the published epoch has advanced
///   `checkpoint_every` past the last checkpoint, write the new run files
///   and the manifest — again outside the writer lock — then briefly take
///   the lock to retire fully-covered log segments and garbage-collect
///   superseded run files. (The final graceful-shutdown log sync lives in
///   `ServerHandle::shutdown_inner`, *after* the workers have drained —
///   updates acknowledged during the drain must be covered too.)
fn run_maintenance(state: &ServerState) {
    let interval = Duration::from_millis(state.cfg.checkpoint_interval_ms.max(10));
    let every = state.cfg.checkpoint_every.max(1);
    let par = uo_par::Parallelism::new(state.cfg.engine_threads.max(1));
    loop {
        {
            let (lock, cv) = &state.checkpoint_signal;
            let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
            // Re-check the flag under the mutex: shutdown notifies while
            // holding it, so a wake cannot slip in before this wait.
            if !state.shutting_down.load(Ordering::SeqCst) {
                let _ = cv.wait_timeout(guard, interval);
            }
        }
        let shutting_down = state.shutting_down.load(Ordering::SeqCst);
        // Heartbeat first: /healthz reasons about how long ago the loop
        // last woke, whatever it then decided to do.
        state.health.last_maintenance_unix_ms.store(unix_ms(), Ordering::Relaxed);
        let mut pass_errors = 0u64;

        // Compaction: fold the stack once it is compact_fan_in deep.
        let fan_in = state.cfg.compact_fan_in;
        if fan_in > 0 {
            let snap = state.current_snapshot();
            if snap.level_count() >= fan_in {
                let span = state.tracer.start(0, "maintenance", "compact");
                let levels_before = snap.level_count();
                match snap.compact_with(par) {
                    Ok(compacted) => {
                        let rows = 3 * compacted.len();
                        let compacted = Arc::new(compacted);
                        if let Some(writer) = &state.writer {
                            let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                            let installed = match &mut *w {
                                WriteBackend::Memory(mw) => {
                                    mw.install_compacted(Arc::clone(&compacted))
                                }
                                WriteBackend::Durable(ds) => {
                                    ds.writer_mut().install_compacted(Arc::clone(&compacted))
                                }
                            };
                            if installed {
                                // Publish under the writer lock — the same
                                // discipline as commits — so the swap cannot
                                // race a concurrent update's publish.
                                *state.snapshot.write().unwrap_or_else(PoisonError::into_inner) =
                                    compacted;
                                state.compactions.fetch_add(1, Ordering::Relaxed);
                                state.compaction_rows.fetch_add(rows as u64, Ordering::Relaxed);
                            }
                            state.tracer.end_with(span, || {
                                vec![
                                    ("levels", levels_before.to_string()),
                                    ("rows", rows.to_string()),
                                    ("installed", installed.to_string()),
                                ]
                            });
                        }
                    }
                    Err(e) => {
                        pass_errors += 1;
                        eprintln!("background compaction failed: {e}");
                    }
                }
            }
        }

        // Checkpointing (durable mode only).
        if let Some(info) = &state.durable {
            let snap = state.current_snapshot();
            let last_cp = info.metrics.last_checkpoint_epoch.load(Ordering::Relaxed);
            if snap.epoch() > last_cp && snap.epoch() - last_cp >= every {
                let span = state.tracer.start(0, "maintenance", "checkpoint");
                match durable::write_checkpoint_file(&info.dir, &snap) {
                    Ok(written) => {
                        if let Some(writer) = &state.writer {
                            let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                            if let WriteBackend::Durable(ds) = &mut *w {
                                if let Err(e) = ds.note_checkpoint(snap.epoch()) {
                                    pass_errors += 1;
                                    eprintln!("checkpoint bookkeeping failed: {e}");
                                }
                            }
                        }
                        state.health.last_checkpoint_unix_ms.store(unix_ms(), Ordering::Relaxed);
                        state.tracer.end_with(span, || {
                            vec![
                                ("epoch", snap.epoch().to_string()),
                                ("runs_written", written.runs_written.to_string()),
                                ("runs_reused", written.runs_reused.to_string()),
                            ]
                        });
                    }
                    Err(e) => {
                        pass_errors += 1;
                        eprintln!("checkpoint write failed: {e}");
                    }
                }
            }
        }
        // A clean pass clears the degraded latch; errors accumulate into
        // it (and into the lifetime total) until one pass succeeds.
        if pass_errors > 0 {
            state.health.maintenance_errors.fetch_add(pass_errors, Ordering::Relaxed);
            state.health.consecutive_errors.fetch_add(pass_errors, Ordering::Relaxed);
        } else {
            state.health.consecutive_errors.store(0, Ordering::Relaxed);
        }
        // Re-load the flag: a shutdown signalled *during* the (possibly
        // long) maintenance work above had no waiter to wake, and waiting
        // out another full interval would stall ServerHandle::shutdown.
        if shutting_down || state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(state.cfg.read_timeout_ms.max(1))));
    let _ = stream.set_nodelay(true);
    // The connection root span. Early exits (clients that connect and
    // leave, malformed heads) abandon it unrecorded, keeping traces to
    // well-formed requests.
    let conn_span = state.tracer.start(0, "server", "connection");
    let read_span = state.tracer.start(conn_span.id, "server", "read_head");
    let head = match http::read_head(&mut stream) {
        Ok(Some(head)) => head,
        Ok(None) => return, // client connected and left (shutdown wake-up)
        Err(_) => {
            let _ = respond_text(&mut stream, 400, "Bad Request", "malformed request head\n");
            return;
        }
    };
    state.tracer.end(read_span);
    let _ = route(state, &mut stream, &head, conn_span.id);
    let method = head.method.clone();
    let path = head.path.clone();
    state.tracer.end_with(conn_span, || vec![("method", method), ("path", path)]);
}

fn respond_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str) -> io::Result<()> {
    http::write_response(stream, status, reason, "text/plain; charset=utf-8", &[], body.as_bytes())
}

fn route(
    state: &ServerState,
    stream: &mut TcpStream,
    head: &http::Head,
    conn: u64,
) -> io::Result<()> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => {
            let (status, reason, body) = healthz_json(state);
            http::write_response(stream, status, reason, "application/json", &[], body.as_bytes())
        }
        ("GET", "/metrics") => {
            // Content negotiation: JSON by default, Prometheus text
            // exposition 0.0.4 when the client prefers text/plain or
            // openmetrics — both views render the same counters.
            if wants_prometheus(head.header("accept")) {
                http::write_response(
                    stream,
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &[],
                    prom::render(state).as_bytes(),
                )
            } else {
                http::write_response(
                    stream,
                    200,
                    "OK",
                    "application/json",
                    &[],
                    metrics_json(state).as_bytes(),
                )
            }
        }
        ("GET", "/stats/plans") => http::write_response(
            stream,
            200,
            "OK",
            "application/json",
            &[],
            plan_stats_json(state).as_bytes(),
        ),
        ("GET", "/stats/slow") => http::write_response(
            stream,
            200,
            "OK",
            "application/json",
            &[],
            state.slow_log.to_json().as_bytes(),
        ),
        ("GET", "/stats/trace") => {
            if state.tracer.is_on() {
                http::write_response(
                    stream,
                    200,
                    "OK",
                    "application/json",
                    &[],
                    state.tracer.to_chrome_json().as_bytes(),
                )
            } else {
                respond_text(
                    stream,
                    404,
                    "Not Found",
                    "tracing disabled: start the endpoint with tracing enabled (serve --trace)\n",
                )
            }
        }
        ("GET", "/sparql") | ("POST", "/sparql") => handle_sparql(state, stream, head, conn),
        ("POST", "/update") => handle_update(state, stream, head, conn),
        ("GET", "/") => respond_text(
            stream,
            200,
            "OK",
            "sparql-uo endpoint: GET/POST /sparql, POST /update, GET /metrics, \
             GET /stats/plans, GET /stats/slow, GET /stats/trace, GET /healthz\n",
        ),
        (_, "/sparql")
        | (_, "/update")
        | (_, "/healthz")
        | (_, "/metrics")
        | (_, "/")
        | (_, "/stats/plans")
        | (_, "/stats/slow")
        | (_, "/stats/trace") => {
            respond_text(stream, 405, "Method Not Allowed", "method not allowed\n")
        }
        _ => respond_text(stream, 404, "Not Found", "unknown path\n"),
    }
}

/// True when the `Accept` header prefers the Prometheus text exposition
/// over JSON for `/metrics` (first supported media range in client order
/// wins; absent header, `*/*` and JSON ranges stay JSON).
fn wants_prometheus(accept: Option<&str>) -> bool {
    let Some(accept) = accept else { return false };
    for range in accept.split(',') {
        let media = range.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
        match media.as_str() {
            "text/plain" | "text/*" | "application/openmetrics-text" => return true,
            "application/json" | "application/*" | "*/*" | "" => return false,
            _ => {}
        }
    }
    false
}

/// Renders `/healthz`: `(status, reason, body)`. Healthy endpoints return
/// 200 with `"status": "ok"`; a stalled or erroring maintenance thread
/// degrades the endpoint to 503 (see [`health_degraded`]) while queries
/// keep being served — the signal is for orchestrators and dashboards.
fn healthz_json(state: &ServerState) -> (u16, &'static str, String) {
    let now = unix_ms();
    let maintenance_expected =
        state.durable.is_some() || (state.writer.is_some() && state.cfg.compact_fan_in > 0);
    let heartbeat_age_ms =
        now.saturating_sub(state.health.last_maintenance_unix_ms.load(Ordering::Relaxed));
    let consecutive = state.health.consecutive_errors.load(Ordering::Relaxed);
    let degraded = health_degraded(
        maintenance_expected && !state.shutting_down.load(Ordering::SeqCst),
        consecutive,
        heartbeat_age_ms,
        state.cfg.checkpoint_interval_ms,
    );
    let (checkpoint_age_ms, wal_segments) = match &state.durable {
        Some(info) => (
            now.saturating_sub(state.health.last_checkpoint_unix_ms.load(Ordering::Relaxed))
                .to_string(),
            info.metrics.wal_segments.load(Ordering::Relaxed).to_string(),
        ),
        None => ("null".to_string(), "null".to_string()),
    };
    let snap = state.current_snapshot();
    let compaction_backlog = if state.cfg.compact_fan_in > 0 {
        snap.level_count().saturating_sub(state.cfg.compact_fan_in)
    } else {
        0
    };
    let body = format!(
        "{{\"status\": \"{}\", \"uptime_s\": {}, \"checkpoint_age_ms\": {checkpoint_age_ms}, \
         \"wal_segments\": {wal_segments}, \"compaction_backlog\": {compaction_backlog}, \
         \"maintenance\": {{\"expected\": {maintenance_expected}, \
         \"heartbeat_age_ms\": {heartbeat_age_ms}, \"errors\": {}, \
         \"consecutive_errors\": {consecutive}}}}}\n",
        if degraded { "degraded" } else { "ok" },
        uo_json::num(state.started.elapsed().as_secs_f64()),
        state.health.maintenance_errors.load(Ordering::Relaxed),
    );
    if degraded {
        (503, "Service Unavailable", body)
    } else {
        (200, "OK", body)
    }
}

/// Admission control + request-body read, shared by the query and update
/// handlers. Takes an in-flight slot (503 + `Retry-After` when the endpoint
/// is full — the slot covers body read + execution, so a client trickling
/// its body in holds, and exhausts, exactly the capacity the limit
/// protects), enforces `max_body_bytes` (413), honours
/// `Expect: 100-continue` (curl sends it for bodies over ~1 KiB; everyone
/// else may already be mid-body, so early error responses drain what was
/// sent — closing with unread data RSTs the response away), and reads the
/// POST body (400 on truncation; empty for GET). Returns `None` when a
/// response has already been written.
fn admit_and_read_body<'a>(
    state: &'a ServerState,
    stream: &mut TcpStream,
    head: &http::Head,
    parent: u64,
) -> io::Result<Option<(AdmissionGuard<'a>, Vec<u8>)>> {
    let expects_continue =
        head.header("expect").is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"));
    let pending_body = if head.method == "POST" && !expects_continue {
        head.content_length().unwrap_or(0)
    } else {
        0
    };

    let admit_span = state.tracer.start(parent, "server", "admission");
    if state.inflight.fetch_add(1, Ordering::SeqCst) >= state.cfg.max_inflight {
        state.inflight.fetch_sub(1, Ordering::SeqCst);
        QueryCounters::bump(&state.counters.rejected);
        http::drain(stream, pending_body);
        http::write_response(
            stream,
            503,
            "Service Unavailable",
            "text/plain; charset=utf-8",
            &[("Retry-After", "1")],
            b"overloaded: too many requests in flight\n",
        )?;
        return Ok(None);
    }
    let inflight = state.inflight.load(Ordering::SeqCst);
    state.tracer.end_with(admit_span, || vec![("inflight", inflight.to_string())]);
    let guard = AdmissionGuard(state);

    if head.method != "POST" {
        return Ok(Some((guard, Vec::new())));
    }
    let len = head.content_length().unwrap_or(0);
    if len > state.cfg.max_body_bytes {
        http::drain(stream, pending_body);
        respond_text(stream, 413, "Payload Too Large", "request body too large\n")?;
        return Ok(None);
    }
    if expects_continue {
        http::write_continue(stream)?;
    }
    let body_span = state.tracer.start(parent, "server", "read_body");
    match http::read_body(stream, len) {
        Ok(body) => {
            state.tracer.end_with(body_span, || vec![("bytes", len.to_string())]);
            Ok(Some((guard, body)))
        }
        Err(_) => {
            respond_text(stream, 400, "Bad Request", "truncated request body\n")?;
            Ok(None)
        }
    }
}

/// [`respond_text`] carrying the request id header.
fn respond_text_id(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    rid: &str,
) -> io::Result<()> {
    http::write_response(
        stream,
        status,
        reason,
        "text/plain; charset=utf-8",
        &[("X-UO-Request-Id", rid)],
        body.as_bytes(),
    )
}

/// Splices a `"profile"` member into a JSON results document, before the
/// document's closing brace. The results serialization is unchanged up to
/// that point, so stripping the member (or comparing with
/// `uo_obs::strip_timing_fields`) recovers byte-stable output.
fn attach_profile(mut body: String, profile: &QueryProfile) -> String {
    match body.rfind('}') {
        Some(pos) => {
            body.insert_str(pos, &format!(", \"profile\": {}", profile.to_json()));
            body
        }
        None => body,
    }
}

fn handle_sparql(
    state: &ServerState,
    stream: &mut TcpStream,
    head: &http::Head,
    conn: u64,
) -> io::Result<()> {
    let t_req = Instant::now();
    let rid = state.request_ids.next_id();
    let req_span = SpanGuard::new(&state.tracer, state.tracer.start(conn, "server", "request"));

    // Content negotiation first: a 406 should not consume an admission slot.
    let Some(mut format) = negotiate(head.header("accept")) else {
        return respond_text_id(
            stream,
            406,
            "Not Acceptable",
            "supported: application/sparql-results+json, text/tab-separated-values, text/plain\n",
            &rid,
        );
    };

    let Some((_guard, body)) = admit_and_read_body(state, stream, head, req_span.id())? else {
        return Ok(());
    };

    // Extract the query text, optional per-request timeout, and whether an
    // EXPLAIN ANALYZE profile was requested.
    let mut query_text: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut profile_requested =
        head.header("x-uo-profile").is_some_and(|v| matches!(v.trim(), "1" | "true"));
    let mut read_params = |params: Vec<(String, String)>| {
        for (k, v) in params {
            match k.as_str() {
                "query" => query_text = Some(v),
                "timeout" => timeout_ms = v.parse().ok(),
                "profile" => profile_requested |= matches!(v.as_str(), "1" | "true"),
                _ => {}
            }
        }
    };
    // Per-request parameters may ride on the request target's query string
    // for GET and (the SPARQL protocol allows it for sparql-query bodies)
    // for POST alike.
    read_params(http::parse_form(&head.query));
    if head.method == "POST" {
        let content_type =
            head.header("content-type").unwrap_or("").split(';').next().unwrap_or("").trim();
        match content_type {
            "application/sparql-query" => {
                query_text = Some(String::from_utf8_lossy(&body).into_owned());
            }
            "application/x-www-form-urlencoded" | "" => {
                read_params(http::parse_form(&String::from_utf8_lossy(&body)));
            }
            other => {
                let msg = format!("unsupported content type {other:?}\n");
                return respond_text_id(stream, 415, "Unsupported Media Type", &msg, &rid);
            }
        }
    }
    let Some(text) = query_text else {
        return respond_text_id(stream, 400, "Bad Request", "missing 'query' parameter\n", &rid);
    };
    if profile_requested {
        // The profile rides inside the JSON results document; the other
        // formats have nowhere to put it.
        format = Format::Json;
    }

    QueryCounters::bump(&state.counters.queries);

    // Parse (needed for the canonical cache key either way).
    let t_parse = Instant::now();
    let parsed = match uo_sparql::parse(&text) {
        Ok(q) => q,
        Err(e) => {
            QueryCounters::bump(&state.counters.parse_errors);
            let msg = format!("parse error: {e}\n");
            return respond_text_id(stream, 400, "Bad Request", &msg, &rid);
        }
    };
    let parse_nanos = t_parse.elapsed().as_nanos() as u64;
    state.tracer.record(req_span.id(), "query", "parse", t_parse, parse_nanos, Vec::new);
    let qtype = query_type(&parsed.body);
    let canonical = uo_sparql::serialize(&parsed);

    // MVCC admission point: grab the current snapshot exactly once. Plan
    // lookup, planning, execution and decoding all use this version, so the
    // response is consistent with it even if commits land mid-query.
    let snapshot = state.current_snapshot();
    let epoch = snapshot.epoch();

    // Plan cache: an epoch-matched hit skips plan construction +
    // optimization; plans from older epochs are stale misses.
    let plan_span = state.tracer.start(req_span.id(), "query", "plan");
    let (prepared, cache_outcome, optimize_nanos, plan_stats) =
        match state.cache.lookup(&canonical, epoch) {
            cache::Lookup::Hit(prepared, _, stats) => {
                QueryCounters::bump(&state.counters.cache_hits);
                (prepared, CacheOutcome::Hit, 0u64, stats)
            }
            outcome @ (cache::Lookup::Stale | cache::Lookup::Miss) => {
                QueryCounters::bump(&state.counters.cache_misses);
                let mut prepared = prepare_parsed(&snapshot, parsed);
                let (transforms, opt_time) = optimize_prepared(
                    &snapshot,
                    state.engine.as_ref(),
                    &mut prepared,
                    state.cfg.strategy,
                );
                let est_root = estimate_root_rows(&snapshot, state.engine.as_ref(), &prepared);
                let prepared = Arc::new(prepared);
                let stats = state.cache.insert(
                    canonical,
                    epoch,
                    Arc::clone(&prepared),
                    transforms,
                    Some(est_root),
                );
                let co = match outcome {
                    cache::Lookup::Stale => CacheOutcome::Stale,
                    _ => CacheOutcome::Miss,
                };
                (prepared, co, opt_time.as_nanos() as u64, stats)
            }
        };
    state.tracer.end_with(plan_span, || {
        vec![("cache", cache_outcome.label().to_string()), ("epoch", epoch.to_string())]
    });

    // Per-query deadline (cooperative, checked at BGP boundaries), plus the
    // endpoint-wide cancel flag raised on shutdown.
    let timeout = Duration::from_millis(
        timeout_ms.unwrap_or(state.cfg.default_timeout_ms).min(state.cfg.max_timeout_ms),
    );
    let cancel = Cancellation::after(timeout).with_flag(Arc::clone(&state.query_cancel));

    let profiler = if profile_requested { Profiler::on() } else { Profiler::off() };
    let projection = prepared.query.projection();
    let exec_span = state.tracer.start(req_span.id(), "query", "execute");
    let report = match try_execute_prepared_profiled(
        &snapshot,
        state.engine.as_ref(),
        &prepared,
        state.cfg.strategy,
        uo_par::Parallelism::new(state.cfg.engine_threads.max(1)),
        &cancel,
        profiler,
    ) {
        Ok(report) => report,
        Err(_) => {
            QueryCounters::bump(&state.counters.cancelled);
            return respond_text_id(
                stream,
                408,
                "Request Timeout",
                "query deadline exceeded (raise the 'timeout' parameter)\n",
                &rid,
            );
        }
    };
    let rows = report.results.len();
    state.tracer.end_with(exec_span, || vec![("rows", rows.to_string())]);
    state.counters.record_ok(qtype, rows);
    // Cardinality feedback for /stats/plans: what the plan actually
    // produced, against the estimate captured when it was cached.
    plan_stats.record_exec(report.wall_nanos, rows as u64);

    let ser_span = state.tracer.start(req_span.id(), "query", "serialize");
    let mut body = match (report.ask, format) {
        // ASK gets the boolean result document of the negotiated format.
        (Some(b), Format::Json) => uo_sparql::ask_json(b),
        (Some(b), Format::Tsv | Format::Debug) => uo_sparql::ask_text(b),
        (None, Format::Json) => uo_sparql::results_json(&projection, &report.results),
        (None, Format::Tsv) => uo_sparql::results_tsv(&projection, &report.results),
        (None, Format::Debug) => debug_table(&projection, &report.results),
    };
    let body_bytes = body.len();
    state.tracer.end_with(ser_span, || vec![("bytes", body_bytes.to_string())]);

    // Endpoint latency: end-to-end wall for this request, recorded into
    // the lock-free /metrics histograms (overall and per query type).
    let total_nanos = t_req.elapsed().as_nanos() as u64;
    state.query_hist.record(total_nanos);
    state.type_hists[type_index(qtype)].record(total_nanos);

    if profile_requested {
        let profile = QueryProfile {
            engine: state.engine.name().to_string(),
            strategy: state.cfg.strategy.label().to_string(),
            threads: report.threads,
            query_type: qtype.to_string(),
            parse_nanos,
            cache: cache_outcome,
            optimize_nanos,
            execute_nanos: report.wall_nanos,
            total_nanos,
            rows: rows as u64,
            rows_enumerated: report.exec_stats.rows_enumerated,
            short_circuit: report.exec_stats.short_circuit,
            root: report.op_profile,
        };
        body = attach_profile(body, &profile);
    }

    if let Some(threshold_ms) = state.cfg.slow_query_ms {
        if total_nanos >= threshold_ms.saturating_mul(1_000_000) {
            let entry = SlowEntry {
                id: rid.clone(),
                unix_ms: unix_ms(),
                wall_nanos: total_nanos,
                rows: rows as u64,
                query_type: qtype.to_string(),
                engine: state.engine.name().to_string(),
                epoch,
                cache: cache_outcome,
                query: text,
            };
            eprintln!("{}", entry.stderr_line());
            state.slow_log.push(entry);
        }
    }

    let write_span = state.tracer.start(req_span.id(), "server", "write");
    let result = http::write_response(
        stream,
        200,
        "OK",
        format.content_type(),
        &[("X-UO-Request-Id", &rid)],
        body.as_bytes(),
    );
    state.tracer.end(write_span);
    state.tracer.end_with(req_span.take(), || {
        vec![
            ("request_id", rid),
            ("type", qtype.to_string()),
            ("rows", rows.to_string()),
            ("epoch", epoch.to_string()),
        ]
    });
    result
}

/// `POST /update`: applies a SPARQL Update request (writable endpoints
/// only). Writers are serialized on the writer mutex; the commit swaps the
/// shared snapshot, so subsequent queries observe the new epoch while
/// queries already in flight keep answering from their admission-time
/// snapshot.
fn handle_update(
    state: &ServerState,
    stream: &mut TcpStream,
    head: &http::Head,
    conn: u64,
) -> io::Result<()> {
    let t_req = Instant::now();
    let rid = state.request_ids.next_id();
    let req_span = SpanGuard::new(&state.tracer, state.tracer.start(conn, "server", "request"));
    let Some(writer) = state.writer.as_ref() else {
        let expects_continue =
            head.header("expect").is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"));
        let pending_body = if expects_continue { 0 } else { head.content_length().unwrap_or(0) };
        http::drain(stream, pending_body);
        return respond_text(
            stream,
            403,
            "Forbidden",
            "read-only endpoint: restart with --writable to accept updates\n",
        );
    };

    // Updates share the admission-control slots with queries: an update
    // holds capacity for its body read + execution + commit.
    let Some((_guard, body)) = admit_and_read_body(state, stream, head, req_span.id())? else {
        return Ok(());
    };
    let content_type =
        head.header("content-type").unwrap_or("").split(';').next().unwrap_or("").trim();
    let text = match content_type {
        "application/sparql-update" => String::from_utf8_lossy(&body).into_owned(),
        "application/x-www-form-urlencoded" | "" => {
            let mut update_text = None;
            for (k, v) in http::parse_form(&String::from_utf8_lossy(&body)) {
                if k == "update" {
                    update_text = Some(v);
                }
            }
            match update_text {
                Some(t) => t,
                None => {
                    return respond_text(stream, 400, "Bad Request", "missing 'update' parameter\n")
                }
            }
        }
        other => {
            let msg = format!("unsupported content type {other:?}\n");
            return respond_text(stream, 415, "Unsupported Media Type", &msg);
        }
    };

    let t_parse = Instant::now();
    let request = match uo_sparql::parse_update(&text) {
        Ok(u) => u,
        Err(e) => {
            state.update_errors.fetch_add(1, Ordering::Relaxed);
            let msg = format!("parse error: {e}\n");
            return respond_text(stream, 400, "Bad Request", &msg);
        }
    };
    state.tracer.record(
        req_span.id(),
        "query",
        "parse",
        t_parse,
        t_parse.elapsed().as_nanos() as u64,
        Vec::new,
    );

    // Serialize writers; queries keep flowing off the previous snapshot
    // until the swap below. The update runs under the endpoint's default
    // deadline (checked at operation boundaries) plus the shutdown flag, so
    // a runaway request cannot hold the writer mutex forever.
    let cancel = Cancellation::after(Duration::from_millis(state.cfg.default_timeout_ms))
        .with_flag(Arc::clone(&state.query_cancel));
    let par = uo_par::Parallelism::new(state.cfg.engine_threads.max(1));
    // The commit-pipeline span: the writer-lock critical section. The
    // write backend parents its own spans (delta merge, WAL append +
    // fsync) at it, and the publish closure records the snapshot swap and
    // the point after which cached plans of older epochs are stale.
    let commit_span =
        SpanGuard::new(&state.tracer, state.tracer.start(req_span.id(), "commit", "commit"));
    let publish = |snap: &Arc<Snapshot>| {
        let span = state.tracer.start(commit_span.id(), "commit", "publish");
        *state.snapshot.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(snap);
        let epoch = snap.epoch();
        state.tracer.end_with(span, || vec![("epoch", epoch.to_string())]);
        state.tracer.instant(commit_span.id(), "commit", "plan_cache_invalidate", || {
            vec![("epoch", epoch.to_string())]
        });
    };
    let report = {
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        match &mut *w {
            WriteBackend::Memory(mw) => mw.set_trace_parent(commit_span.id()),
            WriteBackend::Durable(ds) => ds.set_trace_parent(commit_span.id()),
        }
        match &mut *w {
            WriteBackend::Memory(mw) => {
                match try_run_update(mw, state.engine.as_ref(), &request, par, &cancel) {
                    Ok(report) => {
                        publish(&report.snapshot);
                        report
                    }
                    Err(_) => {
                        // Abandon the half-applied request: drop the
                        // pending delta (commits that already landed keep
                        // their epochs) and make sure queries see the
                        // writer's last committed snapshot.
                        mw.rollback();
                        publish(&mw.snapshot());
                        state.updates_cancelled.fetch_add(1, Ordering::Relaxed);
                        return respond_text(
                            stream,
                            408,
                            "Request Timeout",
                            "update deadline exceeded; operations before the deadline may have \
                             committed\n",
                        );
                    }
                }
            }
            WriteBackend::Durable(ds) => {
                // Journal-before-acknowledge: on success the record is on
                // disk (per the fsync policy) before the snapshot is
                // published or the 200 is written. Both failure modes roll
                // the store back to its pre-request state — in durable
                // mode a request is atomic, never half-committed.
                match try_run_update_durable(ds, state.engine.as_ref(), &request, par, &cancel) {
                    Ok(report) => {
                        publish(&report.snapshot);
                        report
                    }
                    Err(DurableUpdateError::Cancelled) => {
                        state.updates_cancelled.fetch_add(1, Ordering::Relaxed);
                        return respond_text(
                            stream,
                            408,
                            "Request Timeout",
                            "update deadline exceeded; request rolled back (nothing was \
                             journaled)\n",
                        );
                    }
                    Err(DurableUpdateError::Journal(e)) => {
                        state.journal_errors.fetch_add(1, Ordering::Relaxed);
                        let msg = format!("journal write failed ({e}); update rolled back\n");
                        return respond_text(stream, 500, "Internal Server Error", &msg);
                    }
                }
            }
        }
    };
    state.tracer.end_with(commit_span.take(), || {
        vec![
            ("epoch", report.epoch.to_string()),
            ("inserted", report.inserted.to_string()),
            ("deleted", report.deleted.to_string()),
        ]
    });
    state.updates_total.fetch_add(1, Ordering::Relaxed);
    state.update_hist.record(t_req.elapsed().as_nanos() as u64);

    let body = format!(
        "{{\"ops\": {}, \"inserted\": {}, \"deleted\": {}, \"triples\": {}, \"epoch\": {}}}\n",
        report.ops, report.inserted, report.deleted, report.triples, report.epoch
    );
    let write_span = state.tracer.start(req_span.id(), "server", "write");
    let result = http::write_response(
        stream,
        200,
        "OK",
        "application/json",
        &[("X-UO-Request-Id", &rid)],
        body.as_bytes(),
    );
    state.tracer.end(write_span);
    state.tracer.end_with(req_span.take(), || {
        vec![("request_id", rid), ("epoch", report.epoch.to_string())]
    });
    result
}

/// The CLI-style human-readable table (debug format).
fn debug_table(vars: &[String], rows: &[Vec<Option<uo_rdf::Term>>]) -> String {
    let mut out = String::new();
    out.push_str(&vars.iter().map(|v| format!("?{v}")).collect::<Vec<_>>().join("\t"));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|t| t.as_ref().map(|t| t.to_string()).unwrap_or_else(|| "—".into()))
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

/// Renders the `/stats/plans` JSON document: per-cached-plan observed
/// stats, sorted by canonical query text. `actual_over_est` is the
/// cardinality-feedback ratio — the last actual root cardinality over the
/// optimizer's estimate captured at plan time (`null` until the plan has
/// executed); a commit re-plans the entry, so the ratio always describes
/// the current epoch's plan.
fn plan_stats_json(state: &ServerState) -> String {
    let entries: Vec<String> = state
        .cache
        .plans_snapshot()
        .iter()
        .map(|e| {
            let est_root = e.est_root.map_or_else(|| "null".to_string(), uo_json::num);
            let ratio = e.actual_over_est().map_or_else(|| "null".to_string(), uo_json::num);
            format!(
                "{{\"query\": \"{}\", \"epoch\": {}, \"hits\": {}, \"executions\": {}, \
                 \"exec_nanos\": {}, \"last_rows\": {}, \"est_root\": {est_root}, \
                 \"actual_over_est\": {ratio}}}",
                uo_json::escape(&e.query),
                e.epoch,
                e.hits,
                e.executions,
                e.exec_nanos,
                e.last_rows,
            )
        })
        .collect();
    format!(
        "{{\"schema\": \"uo-plan-stats/1\", \"entries\": [{}]}}\n",
        entries.join(",\n             ")
    )
}

/// Renders the `/metrics` JSON document (schema v6: adds the `resources`
/// block — approximate store/plan-cache byte gauges and the trace-buffer
/// occupancy — and the `health` block mirroring `/healthz`, on top of v5's
/// `latency` block of log₂-bucketed histograms).
fn metrics_json(state: &ServerState) -> String {
    let snap = state.counters.snapshot();
    let (cache_hits, cache_misses, cache_stale) = state.cache.stats();
    let store = state.current_snapshot();
    let tiers = store.tier_stats();
    let page_cache = match store.page_cache_stats() {
        Some(pc) => format!(
            "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
            pc.hits, pc.misses, pc.evictions
        ),
        None => "null".to_string(),
    };
    let store_block = format!(
        "{{\"levels\": {}, \"runs\": {}, \"mem_rows\": {}, \"disk_rows\": {}, \
         \"tombstones\": {}, \"compactions\": {}, \"compaction_rows\": {}, \
         \"page_cache\": {page_cache}}}",
        tiers.levels,
        tiers.runs,
        tiers.mem_rows,
        tiers.disk_rows,
        tiers.tombstones,
        state.compactions.load(Ordering::Relaxed),
        state.compaction_rows.load(Ordering::Relaxed),
    );
    let by_type: Vec<String> = snap
        .by_type
        .iter()
        .map(|(qt, n)| format!("\"{}\": {n}", uo_json::escape(&qt.to_string())))
        .collect();
    let wal = match &state.durable {
        Some(info) => {
            let m = &info.metrics;
            format!(
                "{{\"fsync\": \"{}\", \"segments\": {}, \"bytes\": {}, \"records\": {}, \
                 \"synced_epoch\": {}, \"last_checkpoint_epoch\": {}, \"recovered_ops\": {}}}",
                uo_json::escape(&info.fsync),
                m.wal_segments.load(Ordering::Relaxed),
                m.wal_bytes.load(Ordering::Relaxed),
                m.wal_records.load(Ordering::Relaxed),
                m.synced_epoch.load(Ordering::Relaxed),
                m.last_checkpoint_epoch.load(Ordering::Relaxed),
                m.recovered_ops.load(Ordering::Relaxed),
            )
        }
        None => "null".to_string(),
    };
    let by_type_latency: Vec<String> = ALL_QUERY_TYPES
        .iter()
        .map(|&qt| format!("\"{qt}\": {}", state.type_hists[type_index(qt)].snapshot().to_json()))
        .collect();
    let (wal_fsync, commit) = match &state.durable {
        Some(info) => (
            info.metrics.fsync_hist.snapshot().to_json(),
            info.metrics.commit_hist.snapshot().to_json(),
        ),
        None => ("null".to_string(), "null".to_string()),
    };
    let latency = format!(
        "{{\"query\": {}, \"update\": {}, \"by_type\": {{{}}}, \"wal_fsync\": {wal_fsync}, \
         \"commit\": {commit}}}",
        state.query_hist.snapshot().to_json(),
        state.update_hist.snapshot().to_json(),
        by_type_latency.join(", "),
    );
    let resources = format!(
        "{{\"store_mem_bytes\": {}, \"store_disk_bytes\": {}, \"plan_cache_bytes\": {}, \
         \"trace\": {{\"enabled\": {}, \"events\": {}, \"dropped\": {}}}}}",
        tiers.mem_bytes(),
        tiers.disk_bytes(),
        state.cache.approx_bytes(),
        state.tracer.is_on(),
        state.tracer.event_count(),
        state.tracer.dropped(),
    );
    let now = unix_ms();
    let maintenance_expected =
        state.durable.is_some() || (state.writer.is_some() && state.cfg.compact_fan_in > 0);
    let heartbeat_age_ms =
        now.saturating_sub(state.health.last_maintenance_unix_ms.load(Ordering::Relaxed));
    let consecutive = state.health.consecutive_errors.load(Ordering::Relaxed);
    let checkpoint_age_ms = match &state.durable {
        Some(_) => now
            .saturating_sub(state.health.last_checkpoint_unix_ms.load(Ordering::Relaxed))
            .to_string(),
        None => "null".to_string(),
    };
    let health = format!(
        "{{\"degraded\": {}, \"maintenance_expected\": {maintenance_expected}, \
         \"heartbeat_age_ms\": {heartbeat_age_ms}, \"maintenance_errors\": {}, \
         \"consecutive_errors\": {consecutive}, \"checkpoint_age_ms\": {checkpoint_age_ms}, \
         \"compaction_backlog\": {}}}",
        health_degraded(
            maintenance_expected && !state.shutting_down.load(Ordering::SeqCst),
            consecutive,
            heartbeat_age_ms,
            state.cfg.checkpoint_interval_ms,
        ),
        state.health.maintenance_errors.load(Ordering::Relaxed),
        if state.cfg.compact_fan_in > 0 {
            store.level_count().saturating_sub(state.cfg.compact_fan_in)
        } else {
            0
        },
    );
    format!(
        "{{\n  \"schema\": \"uo-server-metrics/6\",\n  \"uptime_s\": {},\n  \
         \"engine\": \"{}\",\n  \"strategy\": \"{}\",\n  \"threads\": {},\n  \
         \"engine_threads\": {},\n  \"triples\": {},\n  \"snapshot_epoch\": {},\n  \
         \"writable\": {},\n  \"inflight\": {},\n  \
         \"max_inflight\": {},\n  \"plan_cache\": {{\"capacity\": {}, \"entries\": {}, \
         \"hits\": {cache_hits}, \"misses\": {cache_misses}, \"stale\": {cache_stale}}},\n  \
         \"updates\": {{\"updates_total\": {}, \"errors\": {}, \"cancelled\": {}, \
         \"journal_errors\": {}}},\n  \"wal\": {wal},\n  \"store\": {store_block},\n  \
         \"latency\": {latency},\n  \"resources\": {resources},\n  \"health\": {health},\n  \
         \"queries\": {{\"admitted\": {}, \"ok\": {}, \"parse_errors\": {}, \
         \"cancelled\": {}, \"rejected\": {}, \"rows\": {}, \"panics\": {}}},\n  \
         \"by_type\": {{{}}}\n}}\n",
        uo_json::num(state.started.elapsed().as_secs_f64()),
        uo_json::escape(state.engine.name()),
        uo_json::escape(state.cfg.strategy.label()),
        state.cfg.threads,
        state.cfg.engine_threads,
        store.len(),
        store.epoch(),
        state.cfg.writable,
        state.inflight.load(Ordering::SeqCst),
        state.cfg.max_inflight,
        state.cfg.cache_capacity,
        state.cache.len(),
        state.updates_total.load(Ordering::Relaxed),
        state.update_errors.load(Ordering::Relaxed),
        state.updates_cancelled.load(Ordering::Relaxed),
        state.journal_errors.load(Ordering::Relaxed),
        snap.queries,
        snap.ok,
        snap.parse_errors,
        snap.cancelled,
        snap.rejected,
        snap.rows,
        snap.panics,
        by_type.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_prefers_first_supported_range() {
        assert_eq!(negotiate(None), Some(Format::Json));
        assert_eq!(negotiate(Some("*/*")), Some(Format::Json));
        assert_eq!(negotiate(Some("application/sparql-results+json")), Some(Format::Json));
        assert_eq!(negotiate(Some("application/json; q=0.9")), Some(Format::Json));
        assert_eq!(negotiate(Some("text/tab-separated-values")), Some(Format::Tsv));
        assert_eq!(negotiate(Some("text/plain, application/json")), Some(Format::Debug));
        assert_eq!(negotiate(Some("text/csv, text/tab-separated-values")), Some(Format::Tsv));
        assert_eq!(negotiate(Some("application/xml")), None);
    }

    #[test]
    fn prometheus_negotiation_first_supported_range_wins() {
        assert!(!wants_prometheus(None), "absent Accept means JSON");
        assert!(!wants_prometheus(Some("*/*")));
        assert!(!wants_prometheus(Some("application/json")));
        assert!(!wants_prometheus(Some("application/*")));
        assert!(wants_prometheus(Some("text/plain")));
        assert!(wants_prometheus(Some("text/plain; version=0.0.4")));
        assert!(wants_prometheus(Some("text/*")));
        assert!(wants_prometheus(Some("application/openmetrics-text; version=1.0.0")));
        // First supported range in client order decides.
        assert!(wants_prometheus(Some("text/plain, application/json")));
        assert!(!wants_prometheus(Some("application/json, text/plain")));
        // Unknown ranges are skipped, not treated as JSON.
        assert!(wants_prometheus(Some("text/html, text/plain")));
    }

    #[test]
    fn health_degradation_policy() {
        // Fresh heartbeat, no errors: healthy regardless of expectation.
        assert!(!health_degraded(true, 0, 0, 200));
        assert!(!health_degraded(false, 0, 0, 200));
        // Any consecutive error degrades, even with a live heartbeat.
        assert!(health_degraded(true, 1, 0, 200));
        assert!(health_degraded(false, 1, 0, 200));
        // A stalled heartbeat only matters when maintenance is expected,
        // and the threshold is max(20 intervals, 5 s).
        assert!(!health_degraded(true, 0, 4_999, 200));
        assert!(health_degraded(true, 0, 5_001, 200));
        assert!(!health_degraded(false, 0, u64::MAX, 200));
        assert!(!health_degraded(true, 0, 19_000, 1_000), "20 × 1 s not yet exceeded");
        assert!(health_degraded(true, 0, 20_001, 1_000));
        // Interval overflow saturates instead of wrapping.
        assert!(!health_degraded(true, 0, u64::MAX - 1, u64::MAX));
    }

    #[test]
    fn attach_profile_splices_before_closing_brace() {
        let profile = QueryProfile {
            engine: "wco".to_string(),
            strategy: "full".to_string(),
            threads: 1,
            query_type: "BGP".to_string(),
            parse_nanos: 1,
            cache: CacheOutcome::Miss,
            optimize_nanos: 2,
            execute_nanos: 3,
            total_nanos: 6,
            rows: 0,
            rows_enumerated: 0,
            short_circuit: false,
            root: None,
        };
        let body = uo_sparql::results_json(&["x".to_string()], &[]);
        let got = attach_profile(body.clone(), &profile);
        assert!(got.starts_with(&body[..body.len() - 1]), "results prefix unchanged");
        assert!(got.contains("\"profile\": {\"engine\": \"wco\""));
        assert!(got.ends_with("}}"), "document still closes");
        // The boolean (ASK) document splices the same way.
        let ask = attach_profile(uo_sparql::ask_json(true), &profile);
        assert!(ask.contains("\"boolean\":true, \"profile\": {"));
    }

    #[test]
    fn debug_table_renders_unbound() {
        let rows = vec![vec![Some(uo_rdf::Term::iri("http://a")), None]];
        let got = debug_table(&["x".to_string(), "y".to_string()], &rows);
        assert_eq!(got, "?x\t?y\n<http://a>\t—\n");
    }
}
