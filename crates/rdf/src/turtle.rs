//! A Turtle (TTL) parser covering the fragment real datasets use.
//!
//! Supported: `@prefix`/`PREFIX` and `@base`/`BASE` declarations, prefixed
//! names, relative IRIs (resolved naively against the base), the `a`
//! keyword, predicate-object lists (`;`), object lists (`,`), numeric /
//! boolean / string literals (with `'`, `"`, `'''`, `"""` quoting, language
//! tags and datatypes), blank node labels and anonymous blank nodes `[]`
//! with property lists, and collections `( ... )` (expanded to `rdf:first` /
//! `rdf:rest` chains).
//!
//! DBpedia and LUBM dumps are distributed in Turtle/N-Triples; this makes
//! the store loadable from either.

use crate::term::Term;
use std::collections::HashMap;
use std::fmt;

const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";

/// A Turtle parse error with line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Turtle parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// Parses a Turtle document into triples.
pub fn parse_turtle(input: &str) -> Result<Vec<(Term, Term, Term)>, TurtleError> {
    let mut out = Vec::new();
    parse_turtle_each(input, &mut |s, p, o| out.push((s, p, o)))?;
    Ok(out)
}

/// Streaming variant of [`parse_turtle`]: invokes `sink` once per statement
/// (in document order, including triples expanded from blank-node property
/// lists and collections) instead of materializing a `Vec`, and returns the
/// statement count. Store loaders use this to encode statements as they
/// are parsed.
pub fn parse_turtle_each(
    input: &str,
    sink: &mut dyn FnMut(Term, Term, Term),
) -> Result<usize, TurtleError> {
    let mut n = 0usize;
    let mut counting = |s: Term, p: Term, o: Term| {
        n += 1;
        sink(s, p, o)
    };
    let mut p = TurtleParser {
        input: input.as_bytes(),
        pos: 0,
        prefixes: HashMap::new(),
        base: String::new(),
        sink: &mut counting,
        blank_counter: 0,
    };
    p.parse_document()?;
    Ok(n)
}

struct TurtleParser<'a, 's> {
    input: &'a [u8],
    pos: usize,
    prefixes: HashMap<String, String>,
    base: String,
    sink: &'s mut dyn FnMut(Term, Term, Term),
    blank_counter: usize,
}

impl<'a, 's> TurtleParser<'a, 's> {
    fn error(&self, message: impl Into<String>) -> TurtleError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        TurtleError { line, column: col, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.pos += 1;
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TurtleError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn at_keyword_ci(&self, kw: &str) -> bool {
        let end = self.pos + kw.len();
        if end > self.input.len() {
            return false;
        }
        let slice = &self.input[self.pos..end];
        slice.eq_ignore_ascii_case(kw.as_bytes())
            && !self.input.get(end).map(|b| b.is_ascii_alphanumeric()).unwrap_or(false)
    }

    fn parse_document(&mut self) -> Result<(), TurtleError> {
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Ok(());
            }
            if self.eat(b'@') {
                if self.at_keyword_ci("prefix") {
                    self.pos += 6;
                    self.parse_prefix_decl()?;
                    self.skip_ws();
                    self.expect(b'.')?;
                } else if self.at_keyword_ci("base") {
                    self.pos += 4;
                    self.parse_base_decl()?;
                    self.skip_ws();
                    self.expect(b'.')?;
                } else {
                    return Err(self.error("expected @prefix or @base"));
                }
                continue;
            }
            if self.at_keyword_ci("PREFIX") {
                self.pos += 6;
                self.parse_prefix_decl()?;
                continue; // SPARQL-style PREFIX has no trailing dot
            }
            if self.at_keyword_ci("BASE") {
                self.pos += 4;
                self.parse_base_decl()?;
                continue;
            }
            self.parse_triples()?;
            self.skip_ws();
            self.expect(b'.')?;
        }
    }

    fn parse_prefix_decl(&mut self) -> Result<(), TurtleError> {
        self.skip_ws();
        let name = self.parse_pname_prefix()?;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_base_decl(&mut self) -> Result<(), TurtleError> {
        self.skip_ws();
        self.base = self.parse_iri_ref()?;
        Ok(())
    }

    /// Parses `name:` (the prefix part of a prefix declaration).
    fn parse_pname_prefix(&mut self) -> Result<String, TurtleError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b':' {
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in prefix"))?
                    .to_string();
                self.pos += 1;
                return Ok(name);
            }
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b >= 0x80 {
                self.pos += 1;
            } else {
                return Err(self.error("invalid prefix name"));
            }
        }
        Err(self.error("unterminated prefix declaration"))
    }

    fn parse_iri_ref(&mut self) -> Result<String, TurtleError> {
        self.skip_ws();
        self.expect(b'<')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in IRI"))?;
                self.pos += 1;
                // Naive relative-IRI resolution: scheme-less IRIs get the base
                // prepended (sufficient for dataset dumps).
                if !raw.contains("://") && !self.base.is_empty() {
                    return Ok(format!("{}{}", self.base, raw));
                }
                return Ok(raw.to_string());
            }
            self.pos += 1;
        }
        Err(self.error("unterminated IRI"))
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::blank(format!("genid{}", self.blank_counter))
    }

    fn parse_triples(&mut self) -> Result<(), TurtleError> {
        self.skip_ws();
        let subject = if self.peek() == Some(b'[') {
            // Anonymous blank node with property list as subject.
            self.parse_blank_node_property_list()?
        } else if self.peek() == Some(b'(') {
            self.parse_collection()?
        } else {
            self.parse_term_subject()?
        };
        self.skip_ws();
        // A bare `[...] .` with no further predicates is legal.
        if self.peek() == Some(b'.') {
            return Ok(());
        }
        self.parse_predicate_object_list(&subject)
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), TurtleError> {
        loop {
            self.skip_ws();
            let predicate = self.parse_verb()?;
            loop {
                self.skip_ws();
                let object = self.parse_object()?;
                (self.sink)(subject.clone(), predicate.clone(), object);
                self.skip_ws();
                if !self.eat(b',') {
                    break;
                }
            }
            self.skip_ws();
            if !self.eat(b';') {
                return Ok(());
            }
            self.skip_ws();
            // Dangling ';' before '.' / ']' is allowed.
            if matches!(self.peek(), Some(b'.') | Some(b']') | None) {
                return Ok(());
            }
        }
    }

    fn parse_verb(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        if self.peek() == Some(b'a') {
            let next = self.input.get(self.pos + 1).copied();
            let terminator = matches!(
                next,
                Some(b' ')
                    | Some(b'\t')
                    | Some(b'\n')
                    | Some(b'\r')
                    | Some(b'<')
                    | Some(b'[')
                    | Some(b'?')
            );
            if terminator {
                self.pos += 1;
                return Ok(Term::iri(format!("{RDF_NS}type")));
            }
        }
        match self.parse_term_subject()? {
            t @ Term::Iri(_) => Ok(t),
            other => Err(self.error(format!("predicate must be an IRI, found {other}"))),
        }
    }

    /// Parses an IRI, prefixed name, or blank node label.
    fn parse_term_subject(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => Ok(Term::iri(self.parse_iri_ref()?)),
            Some(b'_') => self.parse_blank_label(),
            Some(c) if c.is_ascii_alphabetic() || c == b':' || c >= 0x80 => {
                self.parse_prefixed_name()
            }
            other => Err(self.error(format!(
                "expected IRI, prefixed name or blank node (found {:?})",
                other.map(|c| c as char)
            ))),
        }
    }

    fn parse_blank_label(&mut self) -> Result<Term, TurtleError> {
        self.expect(b'_')?;
        self.expect(b':')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("empty blank node label"));
        }
        let label = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        Ok(Term::blank(label))
    }

    fn parse_prefixed_name(&mut self) -> Result<Term, TurtleError> {
        let start = self.pos;
        let mut colon = None;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || b == b'_'
                || b == b'-'
                || b >= 0x80
                || b == b':'
                || (colon.is_some() && (b == b'.' || b == b'%'));
            if !ok {
                break;
            }
            if b == b':' && colon.is_none() {
                colon = Some(self.pos);
            }
            self.pos += 1;
        }
        // Trailing dots terminate the statement.
        while self.pos > start && self.input[self.pos - 1] == b'.' {
            self.pos -= 1;
        }
        let Some(cpos) = colon.filter(|&c| c < self.pos) else {
            let word = std::str::from_utf8(&self.input[start..self.pos]).unwrap_or("");
            // true/false literals
            if word == "true" || word == "false" {
                return Ok(Term::typed_literal(word, format!("{XSD_NS}boolean")));
            }
            return Err(self.error(format!("expected a prefixed name, found '{word}'")));
        };
        let prefix = std::str::from_utf8(&self.input[start..cpos]).unwrap();
        let local = std::str::from_utf8(&self.input[cpos + 1..self.pos]).unwrap();
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.error(format!("undeclared prefix '{prefix}:'")))?;
        Ok(Term::iri(format!("{ns}{local}")))
    }

    fn parse_object(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => Ok(Term::iri(self.parse_iri_ref()?)),
            Some(b'_') => self.parse_blank_label(),
            Some(b'[') => self.parse_blank_node_property_list(),
            Some(b'(') => self.parse_collection(),
            Some(b'"') | Some(b'\'') => self.parse_string_literal(),
            Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-' => self.parse_number(),
            Some(_) => self.parse_prefixed_name(),
            None => Err(self.error("unexpected end of input in object position")),
        }
    }

    fn parse_blank_node_property_list(&mut self) -> Result<Term, TurtleError> {
        self.expect(b'[')?;
        let node = self.fresh_blank();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(node);
        }
        self.parse_predicate_object_list(&node)?;
        self.skip_ws();
        self.expect(b']')?;
        Ok(node)
    }

    fn parse_collection(&mut self) -> Result<Term, TurtleError> {
        self.expect(b'(')?;
        let first = Term::iri(format!("{RDF_NS}first"));
        let rest = Term::iri(format!("{RDF_NS}rest"));
        let nil = Term::iri(format!("{RDF_NS}nil"));
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b')') {
                break;
            }
            items.push(self.parse_object()?);
        }
        if items.is_empty() {
            return Ok(nil);
        }
        let nodes: Vec<Term> = (0..items.len()).map(|_| self.fresh_blank()).collect();
        for (i, item) in items.into_iter().enumerate() {
            (self.sink)(nodes[i].clone(), first.clone(), item);
            let tail = nodes.get(i + 1).cloned().unwrap_or_else(|| nil.clone());
            (self.sink)(nodes[i].clone(), rest.clone(), tail);
        }
        Ok(nodes[0].clone())
    }

    fn parse_string_literal(&mut self) -> Result<Term, TurtleError> {
        let quote = self.bump().unwrap(); // ' or "
        let long = self.peek() == Some(quote) && self.input.get(self.pos + 1) == Some(&quote);
        if long {
            self.pos += 2;
        }
        let mut lex = String::new();
        loop {
            let Some(b) = self.bump() else {
                return Err(self.error("unterminated string literal"));
            };
            if b == quote {
                if !long {
                    break;
                }
                if self.peek() == Some(quote) && self.input.get(self.pos + 1) == Some(&quote) {
                    self.pos += 2;
                    break;
                }
                lex.push(quote as char);
                continue;
            }
            if b == b'\\' {
                match self.bump() {
                    Some(b'n') => lex.push('\n'),
                    Some(b't') => lex.push('\t'),
                    Some(b'r') => lex.push('\r'),
                    Some(b'"') => lex.push('"'),
                    Some(b'\'') => lex.push('\''),
                    Some(b'\\') => lex.push('\\'),
                    Some(b'u') => lex.push(self.unicode_escape(4)?),
                    Some(b'U') => lex.push(self.unicode_escape(8)?),
                    other => {
                        return Err(self.error(format!(
                            "invalid escape '\\{}'",
                            other.map(|c| c as char).unwrap_or(' ')
                        )))
                    }
                }
                continue;
            }
            if b < 0x80 {
                lex.push(b as char);
            } else {
                // Re-assemble UTF-8.
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let start = self.pos - 1;
                let end = start + len;
                if end > self.input.len() {
                    return Err(self.error("truncated UTF-8"));
                }
                let s = std::str::from_utf8(&self.input[start..end])
                    .map_err(|_| self.error("invalid UTF-8 in literal"))?;
                lex.push_str(s);
                self.pos = end;
            }
        }
        // Language tag / datatype.
        if self.eat(b'@') {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_alphanumeric() || b == b'-' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(self.error("empty language tag"));
            }
            let lang = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
            return Ok(Term::lang_literal(lex, lang));
        }
        if self.peek() == Some(b'^') {
            self.pos += 1;
            self.expect(b'^')?;
            self.skip_ws();
            let dt = match self.peek() {
                Some(b'<') => self.parse_iri_ref()?,
                _ => match self.parse_prefixed_name()? {
                    Term::Iri(i) => i.to_string(),
                    _ => return Err(self.error("datatype must be an IRI")),
                },
            };
            return Ok(Term::typed_literal(lex, dt));
        }
        Ok(Term::literal(lex))
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, TurtleError> {
        let end = self.pos + digits;
        if end > self.input.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.input[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        char::from_u32(code).ok_or_else(|| self.error(format!("invalid code point U+{code:X}")))
    }

    fn parse_number(&mut self) -> Result<Term, TurtleError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
        }
        let mut decimal = false;
        let mut exponent = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !decimal && !exponent => {
                    // Only consume the dot if a digit follows (else it is the
                    // statement terminator).
                    if self.input.get(self.pos + 1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                        decimal = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !exponent => {
                    exponent = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let lex = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        if lex.is_empty() || lex == "+" || lex == "-" {
            return Err(self.error("expected a number"));
        }
        let dt = if exponent {
            "double"
        } else if decimal {
            "decimal"
        } else {
            "integer"
        };
        Ok(Term::typed_literal(lex, format!("{XSD_NS}{dt}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_prefixes_and_basic_triples() {
        let doc = r#"
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .
ex:alice foaf:name "Alice" ;
         foaf:knows ex:bob , ex:carol .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 3);
        assert_eq!(triples[0].1, Term::iri("http://xmlns.com/foaf/0.1/name"));
        assert_eq!(triples[2].2, Term::iri("http://example.org/carol"));
    }

    #[test]
    fn parses_a_keyword_and_sparql_style_prefix() {
        let doc = "PREFIX ex: <http://ex/>\nex:x a ex:Class .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].1, Term::iri(format!("{RDF_NS}type")));
    }

    #[test]
    fn parses_literals() {
        let doc = r#"
@prefix ex: <http://ex/> .
ex:x ex:p "plain" , "tagged"@en-GB , "typed"^^ex:dt , 42 , -3.5 , 1.0e3 , true .
"#;
        let triples = parse_turtle(doc).unwrap();
        let objs: Vec<&Term> = triples.iter().map(|t| &t.2).collect();
        assert_eq!(objs[0], &Term::literal("plain"));
        assert_eq!(objs[1], &Term::lang_literal("tagged", "en-GB"));
        assert_eq!(objs[2], &Term::typed_literal("typed", "http://ex/dt"));
        assert_eq!(objs[3], &Term::typed_literal("42", format!("{XSD_NS}integer")));
        assert_eq!(objs[4], &Term::typed_literal("-3.5", format!("{XSD_NS}decimal")));
        assert_eq!(objs[5], &Term::typed_literal("1.0e3", format!("{XSD_NS}double")));
        assert_eq!(objs[6], &Term::typed_literal("true", format!("{XSD_NS}boolean")));
    }

    #[test]
    fn parses_long_strings() {
        let doc = "@prefix ex: <http://ex/> .\nex:x ex:p \"\"\"multi\nline \"quoted\" text\"\"\" .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].2, Term::literal("multi\nline \"quoted\" text"));
    }

    #[test]
    fn parses_blank_node_property_lists() {
        let doc = r#"
@prefix ex: <http://ex/> .
ex:alice ex:address [ ex:city "Springfield" ; ex:zip "12345" ] .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 3);
        // The bnode is object of the first triple and subject of the others.
        let bnode = &triples[2].2; // address triple is pushed last
        assert!(matches!(triples[0].0, Term::Blank(_)));
        assert!(bnode.is_blank() || triples[2].0.is_blank());
    }

    #[test]
    fn parses_collections() {
        let doc = "@prefix ex: <http://ex/> .\nex:x ex:list (ex:a ex:b) .";
        let triples = parse_turtle(doc).unwrap();
        // 2 first + 2 rest + 1 main triple.
        assert_eq!(triples.len(), 5);
        let firsts = triples.iter().filter(|t| t.1 == Term::iri(format!("{RDF_NS}first"))).count();
        assert_eq!(firsts, 2);
    }

    #[test]
    fn base_resolution() {
        let doc = "@base <http://ex/base/> .\n<s> <p> <o> .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].0, Term::iri("http://ex/base/s"));
    }

    #[test]
    fn error_has_position() {
        let doc = "@prefix ex: <http://ex/> .\nex:x ex:p @bad .";
        let e = parse_turtle(doc).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.column > 1);
    }

    #[test]
    fn undeclared_prefix_is_error() {
        assert!(parse_turtle("ex:x ex:p ex:o .").is_err());
    }

    #[test]
    fn ntriples_subset_is_valid_turtle() {
        let doc = "<http://a> <http://p> \"x\"@en .\n<http://a> <http://q> _:b1 .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 2);
    }
}
