//! RDF data model for the SPARQL-UO engine.
//!
//! This crate provides the foundational types shared by every other crate in
//! the workspace:
//!
//! - [`Term`]: IRIs, blank nodes and literals (Definition 1 of the paper);
//! - [`Triple`]: a `⟨subject, predicate, object⟩` three-tuple;
//! - [`Dictionary`]: bidirectional term ⇄ [`Id`] encoding, so the store and
//!   all query operators work on dense `u32` identifiers;
//! - an N-Triples parser and serializer ([`ntriples`]);
//! - a fast, non-cryptographic hasher ([`fxhash`]) used for all internal hash
//!   maps (HashDoS resistance is irrelevant for an embedded analytical store).
//!
//! # Example
//!
//! ```
//! use uo_rdf::{Dictionary, Term, Triple};
//!
//! let mut dict = Dictionary::new();
//! let s = dict.encode(&Term::iri("http://example.org/alice"));
//! let p = dict.encode(&Term::iri("http://xmlns.com/foaf/0.1/name"));
//! let o = dict.encode(&Term::lang_literal("Alice", "en"));
//! let t = Triple::new(s, p, o);
//! assert_eq!(dict.decode(t.subject).unwrap().to_string(),
//!            "<http://example.org/alice>");
//! ```

pub mod dictionary;
pub mod fxhash;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;

pub use dictionary::{Dictionary, Id, NO_ID};
pub use fxhash::{FxHashMap, FxHashSet};
pub use term::Term;
pub use triple::Triple;
