//! RDF terms: IRIs, blank nodes and literals.
//!
//! Following Definition 1 of the paper, let `I`, `B`, `L` be pairwise disjoint
//! sets of IRIs, blank nodes and literals. A [`Term`] is an element of
//! `I ∪ B ∪ L`.

use std::fmt;

/// An RDF term.
///
/// Literals carry an optional language tag (`"chat"@en`) or an optional
/// datatype IRI (`"1"^^xsd:integer`); at most one of the two is present,
/// matching the RDF 1.1 abstract syntax.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI, stored without the surrounding angle brackets.
    Iri(Box<str>),
    /// A blank node label, stored without the `_:` prefix.
    Blank(Box<str>),
    /// A literal with its lexical form and optional annotation.
    Literal {
        /// The lexical form, unescaped.
        lexical: Box<str>,
        /// `Some(tag)` for language-tagged strings.
        lang: Option<Box<str>>,
        /// `Some(iri)` for typed literals. `None` means `xsd:string`
        /// (the RDF 1.1 default) for plain literals without a language tag.
        datatype: Option<Box<str>>,
    },
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(iri: impl Into<Box<str>>) -> Self {
        Term::Iri(iri.into())
    }

    /// Creates a blank node term from its label (without `_:`).
    pub fn blank(label: impl Into<Box<str>>) -> Self {
        Term::Blank(label.into())
    }

    /// Creates a plain (string) literal.
    pub fn literal(lexical: impl Into<Box<str>>) -> Self {
        Term::Literal { lexical: lexical.into(), lang: None, datatype: None }
    }

    /// Creates a language-tagged literal, e.g. `"Bill Clinton"@en`.
    pub fn lang_literal(lexical: impl Into<Box<str>>, lang: impl Into<Box<str>>) -> Self {
        Term::Literal { lexical: lexical.into(), lang: Some(lang.into()), datatype: None }
    }

    /// Creates a typed literal, e.g. `"1946-08-19"^^xsd:date`.
    pub fn typed_literal(lexical: impl Into<Box<str>>, datatype: impl Into<Box<str>>) -> Self {
        Term::Literal { lexical: lexical.into(), lang: None, datatype: Some(datatype.into()) }
    }

    /// Returns `true` if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` if this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// Returns `true` if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// Returns `true` if this term may appear in the subject position of a
    /// triple (`I ∪ B`, Definition 1).
    pub fn is_valid_subject(&self) -> bool {
        !self.is_literal()
    }

    /// Returns `true` if this term may appear in the predicate position (`I`).
    pub fn is_valid_predicate(&self) -> bool {
        self.is_iri()
    }

    /// The IRI string if this is an IRI term.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The numeric value of this literal if its datatype is one of the XSD
    /// numeric types (integer, decimal, double, float and the
    /// integer-derived types), used for SPARQL value comparison.
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, lang: None, datatype: Some(dt) } => {
                let numeric = dt.starts_with("http://www.w3.org/2001/XMLSchema#")
                    && matches!(
                        &dt["http://www.w3.org/2001/XMLSchema#".len()..],
                        "integer"
                            | "decimal"
                            | "double"
                            | "float"
                            | "long"
                            | "int"
                            | "short"
                            | "byte"
                            | "nonNegativeInteger"
                            | "positiveInteger"
                            | "negativeInteger"
                            | "nonPositiveInteger"
                            | "unsignedLong"
                            | "unsignedInt"
                            | "unsignedShort"
                            | "unsignedByte"
                    );
                if numeric {
                    lexical.parse().ok()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The lexical form if this is a literal term.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }
}

fn escape_into(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    for c in s.chars() {
        match c {
            '\\' => write!(f, "\\\\")?,
            '"' => write!(f, "\\\"")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            _ => write!(f, "{c}")?,
        }
    }
    Ok(())
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Literal { lexical, lang, datatype } => {
                write!(f, "\"")?;
                escape_into(f, lexical)?;
                write!(f, "\"")?;
                match (lang, datatype) {
                    (Some(l), _) => write!(f, "@{l}"),
                    (None, Some(dt)) => write!(f, "^^<{dt}>"),
                    (None, None) => Ok(()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
    }

    #[test]
    fn display_blank() {
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
    }

    #[test]
    fn display_plain_literal() {
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn display_lang_literal() {
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
    }

    #[test]
    fn display_typed_literal() {
        assert_eq!(
            Term::typed_literal("1", "http://www.w3.org/2001/XMLSchema#integer").to_string(),
            "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn display_escapes_quotes_and_newlines() {
        assert_eq!(Term::literal("a\"b\nc\\d").to_string(), "\"a\\\"b\\nc\\\\d\"");
    }

    #[test]
    fn position_validity() {
        assert!(Term::iri("x").is_valid_subject());
        assert!(Term::blank("x").is_valid_subject());
        assert!(!Term::literal("x").is_valid_subject());
        assert!(Term::iri("x").is_valid_predicate());
        assert!(!Term::blank("x").is_valid_predicate());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Term::literal("z"), Term::iri("a"), Term::blank("m")];
        v.sort();
        // Ordering is derived (variant order: Iri < Blank < Literal); we only
        // require that it is total and stable.
        assert_eq!(v[0], Term::iri("a"));
    }
}
