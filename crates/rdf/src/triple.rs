//! Dictionary-encoded triples.

use crate::dictionary::Id;

/// A dictionary-encoded RDF triple `⟨subject, predicate, object⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Encoded subject (an IRI or blank node).
    pub subject: Id,
    /// Encoded predicate (an IRI).
    pub predicate: Id,
    /// Encoded object (any term).
    pub object: Id,
}

impl Triple {
    /// Creates a triple from three encoded ids.
    pub fn new(subject: Id, predicate: Id, object: Id) -> Self {
        Triple { subject, predicate, object }
    }

    /// The triple as an `[s, p, o]` array.
    #[inline]
    pub fn as_array(&self) -> [Id; 3] {
        [self.subject, self.predicate, self.object]
    }
}

impl From<[Id; 3]> for Triple {
    fn from(a: [Id; 3]) -> Self {
        Triple::new(a[0], a[1], a[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_round_trip() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.as_array(), [1, 2, 3]);
        assert_eq!(Triple::from([1, 2, 3]), t);
    }

    #[test]
    fn ordering_is_spo_lexicographic() {
        let mut v = [Triple::new(2, 1, 1), Triple::new(1, 9, 9), Triple::new(1, 2, 3)];
        v.sort();
        assert_eq!(v[0], Triple::new(1, 2, 3));
        assert_eq!(v[2], Triple::new(2, 1, 1));
    }
}
