//! Dictionary encoding of RDF terms.
//!
//! Every distinct [`Term`] in a dataset is assigned a dense [`Id`] starting at
//! `1`. Id `0` ([`NO_ID`]) is reserved and used throughout the workspace as
//! the "unbound" sentinel in solution rows, which keeps rows as flat `u32`
//! arrays with no `Option` overhead.

use crate::fxhash::FxHashMap;
use crate::term::Term;

/// A dictionary-encoded term identifier. `0` is reserved (see [`NO_ID`]).
pub type Id = u32;

/// The reserved identifier meaning "no term" / "unbound variable".
pub const NO_ID: Id = 0;

/// A bidirectional mapping between [`Term`]s and dense [`Id`]s.
///
/// Encoding is append-only: terms are never removed, which lets decoded
/// lookups be a simple vector index.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    term_to_id: FxHashMap<Term, Id>,
    id_to_term: Vec<Term>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `term`, assigning a fresh one if necessary.
    pub fn encode(&mut self, term: &Term) -> Id {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = (self.id_to_term.len() + 1) as Id;
        self.id_to_term.push(term.clone());
        self.term_to_id.insert(term.clone(), id);
        id
    }

    /// Returns the id for `term` if it has been encoded before.
    ///
    /// Query constants that never occur in the data map to `None`; callers
    /// treat such triple patterns as having zero matches.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.term_to_id.get(term).copied()
    }

    /// Returns the term for `id`, or `None` for [`NO_ID`] and out-of-range ids.
    pub fn decode(&self, id: Id) -> Option<&Term> {
        if id == NO_ID {
            return None;
        }
        self.id_to_term.get(id as usize - 1)
    }

    /// The number of distinct encoded terms.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    /// Returns `true` if no term has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Iterates over `(id, term)` pairs in encoding order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &Term)> {
        self.id_to_term.iter().enumerate().map(|(i, t)| ((i + 1) as Id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("http://a"));
        let b = d.encode(&Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_start_at_one() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode(&Term::iri("x")), 1);
        assert_eq!(d.encode(&Term::iri("y")), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://a"),
            Term::blank("b1"),
            Term::literal("plain"),
            Term::lang_literal("hello", "en"),
            Term::typed_literal("3", "http://www.w3.org/2001/XMLSchema#integer"),
        ];
        let ids: Vec<Id> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), Some(t));
        }
    }

    #[test]
    fn no_id_decodes_to_none() {
        let d = Dictionary::new();
        assert_eq!(d.decode(NO_ID), None);
        assert_eq!(d.decode(99), None);
    }

    #[test]
    fn lookup_missing_is_none() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("x"));
        assert_eq!(d.lookup(&Term::iri("y")), None);
        assert_eq!(d.lookup(&Term::iri("x")), Some(1));
    }

    #[test]
    fn literals_distinguished_by_annotation() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::literal("x"));
        let b = d.encode(&Term::lang_literal("x", "en"));
        let c = d.encode(&Term::typed_literal("x", "http://dt"));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("a"));
        d.encode(&Term::iri("b"));
        let v: Vec<_> = d.iter().map(|(i, t)| (i, t.clone())).collect();
        assert_eq!(v, vec![(1, Term::iri("a")), (2, Term::iri("b"))]);
    }
}
