//! A line-oriented N-Triples parser and serializer.
//!
//! Supports the full N-Triples grammar used by the benchmark datasets: IRIs,
//! blank nodes, plain / language-tagged / typed literals, `\uXXXX` and
//! `\UXXXXXXXX` escapes, comments and blank lines.

use crate::term::Term;
use std::fmt;

/// An error produced while parsing an N-Triples document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole N-Triples document into `(subject, predicate, object)`
/// term triples.
pub fn parse_document(input: &str) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    let mut out = Vec::new();
    parse_document_each(input, |s, p, o| out.push((s, p, o)))?;
    Ok(out)
}

/// Streaming variant of [`parse_document`]: invokes `sink` once per
/// statement instead of materializing a `Vec` of decoded terms. Store
/// loaders use this to encode statements as they are parsed, keeping peak
/// ingest memory at the document plus the encoded triples.
pub fn parse_document_each(
    input: &str,
    mut sink: impl FnMut(Term, Term, Term),
) -> Result<usize, ParseError> {
    let mut n = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) =
            parse_line(line).map_err(|message| ParseError { line: lineno + 1, message })?;
        sink(s, p, o);
        n += 1;
    }
    Ok(n)
}

/// Parses a single N-Triples statement (without trailing newline).
pub fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor { input: line.as_bytes(), pos: 0 };
    cursor.skip_ws();
    let s = cursor.parse_term()?;
    if !s.is_valid_subject() {
        return Err(format!("invalid subject term: {s}"));
    }
    cursor.skip_ws();
    let p = cursor.parse_term()?;
    if !p.is_valid_predicate() {
        return Err(format!("invalid predicate term: {p}"));
    }
    cursor.skip_ws();
    let o = cursor.parse_term()?;
    cursor.skip_ws();
    if !cursor.eat(b'.') {
        return Err("expected '.' terminating the statement".to_string());
    }
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err("trailing content after '.'".to_string());
    }
    Ok((s, p, o))
}

/// Serializes triples into an N-Triples document.
pub fn serialize<'a>(triples: impl IntoIterator<Item = &'a (Term, Term, Term)>) -> String {
    let mut out = String::new();
    for (s, p, o) in triples {
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    out
}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_term(&mut self) -> Result<Term, String> {
        match self.peek() {
            Some(b'<') => self.parse_iri(),
            Some(b'_') => self.parse_blank(),
            Some(b'"') => self.parse_literal(),
            Some(c) => Err(format!("unexpected character '{}'", c as char)),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn parse_iri(&mut self) -> Result<Term, String> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let iri = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| "IRI is not valid UTF-8".to_string())?;
                self.pos += 1;
                return Ok(Term::iri(iri));
            }
            self.pos += 1;
        }
        Err("unterminated IRI".to_string())
    }

    fn parse_blank(&mut self) -> Result<Term, String> {
        self.pos += 1; // '_'
        if !self.eat(b':') {
            return Err("expected ':' after '_' in blank node".to_string());
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // A blank node label must not end with '.'; back off if it does (the
        // '.' is the statement terminator).
        let mut end = self.pos;
        while end > start && self.input[end - 1] == b'.' {
            end -= 1;
            self.pos -= 1;
        }
        if end == start {
            return Err("empty blank node label".to_string());
        }
        let label = std::str::from_utf8(&self.input[start..end])
            .map_err(|_| "blank node label is not valid UTF-8".to_string())?;
        Ok(Term::blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term, String> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut lexical = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated literal".to_string()),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => lexical.push('"'),
                    Some(b'\\') => lexical.push('\\'),
                    Some(b'n') => lexical.push('\n'),
                    Some(b'r') => lexical.push('\r'),
                    Some(b't') => lexical.push('\t'),
                    Some(b'b') => lexical.push('\u{8}'),
                    Some(b'f') => lexical.push('\u{c}'),
                    Some(b'\'') => lexical.push('\''),
                    Some(b'u') => lexical.push(self.parse_unicode_escape(4)?),
                    Some(b'U') => lexical.push(self.parse_unicode_escape(8)?),
                    other => {
                        return Err(format!(
                            "invalid escape sequence '\\{}'",
                            other.map(|c| c as char).unwrap_or(' ')
                        ))
                    }
                },
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if b < 0x80 {
                        lexical.push(b as char);
                    } else {
                        let len = utf8_len(b);
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.input.len() {
                            return Err("truncated UTF-8 sequence".to_string());
                        }
                        let s = std::str::from_utf8(&self.input[start..end])
                            .map_err(|_| "invalid UTF-8 in literal".to_string())?;
                        lexical.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
        // Optional language tag or datatype.
        if self.eat(b'@') {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_alphanumeric() || b == b'-' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err("empty language tag".to_string());
            }
            let lang = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
            Ok(Term::lang_literal(lexical, lang))
        } else if self.peek() == Some(b'^') {
            self.pos += 1;
            if !self.eat(b'^') {
                return Err("expected '^^' before datatype IRI".to_string());
            }
            match self.parse_iri()? {
                Term::Iri(dt) => Ok(Term::typed_literal(lexical, dt)),
                _ => unreachable!("parse_iri returns Iri"),
            }
        } else {
            Ok(Term::literal(lexical))
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, String> {
        let start = self.pos;
        let end = start + digits;
        if end > self.input.len() {
            return Err("truncated unicode escape".to_string());
        }
        let hex = std::str::from_utf8(&self.input[start..end])
            .map_err(|_| "invalid unicode escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| "invalid unicode escape".to_string())?;
        self.pos = end;
        char::from_u32(code).ok_or_else(|| format!("invalid code point U+{code:X}"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_statement() {
        let (s, p, o) = parse_line("<http://a> <http://p> <http://b> .").unwrap();
        assert_eq!(s, Term::iri("http://a"));
        assert_eq!(p, Term::iri("http://p"));
        assert_eq!(o, Term::iri("http://b"));
    }

    #[test]
    fn parses_literals() {
        let (_, _, o) = parse_line(r#"<http://a> <http://p> "hi there" ."#).unwrap();
        assert_eq!(o, Term::literal("hi there"));
        let (_, _, o) = parse_line(r#"<http://a> <http://p> "hi"@en-GB ."#).unwrap();
        assert_eq!(o, Term::lang_literal("hi", "en-GB"));
        let (_, _, o) =
            parse_line(r#"<http://a> <http://p> "1"^^<http://www.w3.org/2001/XMLSchema#int> ."#)
                .unwrap();
        assert_eq!(o, Term::typed_literal("1", "http://www.w3.org/2001/XMLSchema#int"));
    }

    #[test]
    fn parses_escapes() {
        let (_, _, o) = parse_line(r#"<http://a> <http://p> "a\"b\n\t\\c" ."#).unwrap();
        assert_eq!(o, Term::literal("a\"b\n\t\\c"));
        let (_, _, o) = parse_line(r#"<http://a> <http://p> "A\U0001F600" ."#).unwrap();
        assert_eq!(o, Term::literal("A😀"));
    }

    #[test]
    fn parses_blank_nodes() {
        let (s, _, o) = parse_line("_:b0 <http://p> _:b1 .").unwrap();
        assert_eq!(s, Term::blank("b0"));
        assert_eq!(o, Term::blank("b1"));
    }

    #[test]
    fn parses_utf8_in_literals() {
        let (_, _, o) = parse_line("<http://a> <http://p> \"héllo wörld ✓\" .").unwrap();
        assert_eq!(o, Term::literal("héllo wörld ✓"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let doc = "# comment\n\n<http://a> <http://p> <http://b> .\n  # another\n";
        assert_eq!(parse_document(doc).unwrap().len(), 1);
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse_line(r#""lit" <http://p> <http://b> ."#).is_err());
    }

    #[test]
    fn rejects_blank_predicate() {
        assert!(parse_line("<http://a> _:p <http://b> .").is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse_line("<http://a> <http://p> <http://b>").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_line("<http://a> <http://p> <http://b> . extra").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let doc = "<http://a> <http://p> <http://b> .\nbroken line\n";
        let err = parse_document(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn round_trip() {
        let triples = vec![
            (Term::iri("http://a"), Term::iri("http://p"), Term::lang_literal("x\"y", "en")),
            (Term::blank("b"), Term::iri("http://q"), Term::typed_literal("1", "http://dt")),
        ];
        let doc = serialize(&triples);
        assert_eq!(parse_document(&doc).unwrap(), triples);
    }
}
