//! A minimal reimplementation of the `rustc-hash` (Fx) hashing algorithm.
//!
//! The default SipHash in `std` is collision-resistant but slow for the short
//! integer and string keys that dominate a triple store's workload. The Fx
//! algorithm (used by the Rust compiler itself) is an order of magnitude
//! faster on such keys. We inline it here rather than depending on an
//! external crate; it is ~30 lines.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx (Firefox/rustc) hasher: a simple multiply-and-rotate word hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail. This matches the
        // throughput-oriented layout of the original implementation closely
        // enough for our purposes (string keys in the dictionary).
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // tail length is mixed in, so a prefix must not collide with the whole
        assert_ne!(hash_of(&"abc"), hash_of(&"abcd"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("x".into());
        assert!(s.contains("x"));
    }

    #[test]
    fn long_string_keys() {
        let a = "x".repeat(1000);
        let mut b = a.clone();
        b.push('y');
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&a), hash_of(&a.clone()));
    }
}
