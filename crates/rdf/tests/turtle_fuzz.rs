//! Fuzz-style robustness for the Turtle parser: never panic, and parse
//! generated well-formed documents.

use proptest::prelude::*;
use uo_rdf::turtle::parse_turtle;

proptest! {
    #[test]
    fn never_panics_on_ascii(input in "[ -~\\n]{0,300}") {
        let _ = parse_turtle(&input);
    }

    #[test]
    fn never_panics_on_token_soup(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "@prefix", "@base", "PREFIX", "ex:", "<http://x>", "ex:a", "a",
            "\"lit\"", "\"\"\"long\"\"\"", "42", "-3.5", "true", "[", "]",
            "(", ")", ";", ",", ".", "_:b", "@en", "^^ex:dt",
        ]),
        0..30,
    )) {
        let _ = parse_turtle(&tokens.join(" "));
    }

    #[test]
    fn generated_documents_parse(
        n in 1usize..8,
        with_lists in any::<bool>(),
        with_bnodes in any::<bool>(),
    ) {
        let mut doc = String::from("@prefix ex: <http://ex/> .\n");
        for i in 0..n {
            doc.push_str(&format!("ex:s{i} ex:p{} ex:o{i} , \"lit {i}\"@en ; ex:q {i} .\n", i % 3));
        }
        if with_lists {
            doc.push_str("ex:l ex:items (ex:a ex:b \"c\") .\n");
        }
        if with_bnodes {
            doc.push_str("ex:x ex:addr [ ex:city \"Springfield\" ; ex:zip 12345 ] .\n");
        }
        let parsed = parse_turtle(&doc);
        prop_assert!(parsed.is_ok(), "{:?} on\n{doc}", parsed.err());
        let min = n * 3 + if with_lists { 7 } else { 0 } + if with_bnodes { 3 } else { 0 };
        prop_assert!(parsed.unwrap().len() >= min);
    }

    /// Every N-Triples document our serializer emits is also valid Turtle.
    #[test]
    fn ntriples_output_is_valid_turtle(
        strings in prop::collection::vec("[a-zA-Z0-9 ]{0,12}", 1..6)
    ) {
        let triples: Vec<(uo_rdf::Term, uo_rdf::Term, uo_rdf::Term)> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    uo_rdf::Term::iri(format!("http://s{i}")),
                    uo_rdf::Term::iri("http://p"),
                    uo_rdf::Term::lang_literal(s.clone(), "en"),
                )
            })
            .collect();
        let doc = uo_rdf::ntriples::serialize(&triples);
        let reparsed = parse_turtle(&doc);
        prop_assert!(reparsed.is_ok());
        prop_assert_eq!(reparsed.unwrap(), triples);
    }
}
