//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate this workspace uses.
//!
//! The build environment has no cargo-registry access, so external
//! dependencies are vendored as minimal, API-compatible implementations.
//! This crate supports:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig { .. })]` inner attribute) generating
//!   `#[test]` functions that run a closure over random inputs;
//! - [`strategy::Strategy`] with `prop_map`, implemented for integer ranges,
//!   tuples, and regex-like `&str` patterns (character classes with bounded
//!   repetition);
//! - [`collection::vec`], [`option::of`], [`sample::select`], and
//!   [`arbitrary::any`];
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from real proptest, by design:
//!
//! - **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! - **deterministic by default** — each test derives its RNG seed from the
//!   test's module path and name, so runs are reproducible; set
//!   `PROPTEST_SEED=<u64>` to perturb every stream, and `PROPTEST_CASES=<n>`
//!   to override the default case count (64) globally.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespaced re-exports, mirroring `proptest::prelude::prop`.
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Generates `#[test]` functions that evaluate a body over random inputs
/// drawn from strategies.
///
/// The `#[test]` attribute on each function is passed through verbatim, so
/// the doctest below omits it to call the generated function directly:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)*);
            runner.run(&strategy, |($($arg,)*)| -> $crate::test_runner::TestCaseResult {
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a proptest body, returning a structured
/// failure (instead of panicking) so the runner can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a proptest body; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            lhs,
            format!($($fmt)*)
        );
    }};
}
