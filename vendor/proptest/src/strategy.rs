//! The [`Strategy`] trait and its core implementations.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of an RNG stream.
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.new_value(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` strategies are regex-like string generators; see [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
