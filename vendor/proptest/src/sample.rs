//! Sampling strategies (`prop::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Picks one element of `options` uniformly per case.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
