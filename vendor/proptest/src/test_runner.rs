//! Configuration, errors, and the case-running loop.

use crate::strategy::Strategy;

/// The RNG driving all strategies. A type alias so strategies and user code
/// agree on one concrete type.
pub type TestRng = rand::rngs::StdRng;

/// Subset of proptest's run configuration.
///
/// `cases` defaults to 64 (not proptest's 256) to keep the full workspace
/// suite CI-friendly; override globally with `PROPTEST_CASES`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of whole-case rejects (`prop_assume` style) before the
    /// run aborts; 0 means "derive from `cases`" (proptest's field of the
    /// same name).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases, max_global_rejects: 0 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input should not count toward the case budget.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `config.cases` random cases of a property.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// `name` (the test's module path and function name) determines the RNG
    /// stream, so every test is deterministic but streams differ across
    /// tests. `PROPTEST_SEED` perturbs all streams at once.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        use rand::SeedableRng;
        let env_seed: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
        TestRunner { config, rng: TestRng::seed_from_u64(fnv1a(name.as_bytes()) ^ env_seed) }
    }

    /// Generates inputs and applies `test` until `cases` successes, a
    /// failure or body panic (both report the offending input), or too
    /// many rejects.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = if self.config.max_global_rejects > 0 {
            self.config.max_global_rejects
        } else {
            self.config.cases.saturating_mul(8).max(256)
        };
        while passed < self.config.cases {
            // Checkpoint the (small, cloneable) RNG so the failing input can
            // be regenerated for the report without Debug-formatting every
            // passing case in the hot loop.
            let checkpoint = self.rng.clone();
            let value = strategy.new_value(&mut self.rng);
            // Catch panics from the body (e.g. the fuzz tests' "never
            // panics" properties) so the offending input is reported;
            // without this the panic escapes before the Fail arm runs.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            let result = match outcome {
                Ok(result) => result,
                Err(payload) => {
                    let mut replay = checkpoint;
                    eprintln!(
                        "proptest: panic after {passed} passing case(s) on input: {:?}",
                        strategy.new_value(&mut replay)
                    );
                    std::panic::resume_unwind(payload);
                }
            };
            match result {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest: too many rejected cases ({rejected}) after {passed} passes"
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    let mut replay = checkpoint;
                    let shown = format!("{:?}", strategy.new_value(&mut replay));
                    panic!(
                        "proptest: property failed after {passed} passing case(s)\n\
                         input: {shown}\n{reason}"
                    );
                }
            }
        }
    }
}
