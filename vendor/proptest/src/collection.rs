//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (start, end) = r.into_inner();
        assert!(start <= end, "empty size range");
        SizeRange { min: start, max_exclusive: end + 1 }
    }
}

/// A `Vec<T>` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
