//! The [`Arbitrary`] trait and [`any`] (type-driven strategies).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`: uniform over its whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut TestRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary_value(rng: &mut TestRng) -> i32 {
        rng.gen::<u32>() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary_value(rng: &mut TestRng) -> i64 {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for () {
    fn arbitrary_value(_rng: &mut TestRng) {}
}
