//! Regex-like string generation for `&str` strategies.
//!
//! Supports the fragment the workspace's tests use: a sequence of literal
//! characters, escapes (`\n`, `\t`, `\\`, `\-`, …) and character classes
//! `[...]` (with `a-z` ranges), each optionally repeated with `{n}`,
//! `{n,m}`, `?`, `*` (up to 8), or `+` (1 up to 8). Anything fancier —
//! alternation, groups, anchors — is rejected with a panic naming the
//! unsupported construct, so a future test using one fails loudly rather
//! than silently generating the wrong language.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug)]
enum Atom {
    /// A set of candidate characters (singleton for a literal).
    Class(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = rng.gen_range(piece.min..=piece.max);
        let Atom::Class(chars) = &piece.atom;
        for _ in 0..n {
            out.push(chars[rng.gen_range(0..chars.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Class(vec![unescape(c)])
            }
            c @ ('(' | ')' | '|' | '^' | '$' | '.') => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let (lo, hi) = match body.split_once(',') {
                None => {
                    let n = body.parse().expect("bad repeat count");
                    (n, n)
                }
                Some((_, "")) => {
                    panic!("open-ended repeat {{n,}} unsupported in pattern {pattern:?}")
                }
                Some((lo, hi)) => {
                    (lo.parse().expect("bad repeat bound"), hi.parse().expect("bad repeat bound"))
                }
            };
            assert!(lo <= hi, "inverted repeat bounds in pattern {pattern:?}");
            (lo, hi)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    assert!(chars.get(i) != Some(&'^'), "negated classes unsupported in pattern {pattern:?}");
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        i += 1;
        // `a-z` range (a trailing `-` right before `]` is a literal).
        if chars.get(i) == Some(&'-') && i + 1 < chars.len() && chars[i + 1] != ']' {
            i += 1;
            let hi = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            set.extend(lo..=hi);
        } else {
            set.push(lo);
        }
    }
    assert!(chars.get(i) == Some(&']'), "unclosed [ in pattern {pattern:?}");
    assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
    (set, i + 1)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ascii_class_with_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~\\n]{0,300}", &mut r);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn alnum_with_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 _.!@-]{0,30}", &mut r);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || " _.!@-".contains(c)));
        }
    }

    #[test]
    fn literal_sequences_and_quantifiers() {
        let mut r = rng();
        let s = generate("ab{2}c?", &mut r);
        assert!(s.starts_with("abb"));
        assert!(s == "abb" || s == "abbc");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn rejects_groups() {
        generate("(ab)+", &mut rng());
    }
}
