//! `Option` strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generates `None` half the time and `Some` of the inner strategy
/// otherwise (real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(0.5) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}
