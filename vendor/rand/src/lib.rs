//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API) that this workspace uses.
//!
//! The build environment has no access to a cargo registry, so the external
//! dependencies are vendored as minimal, API-compatible implementations.
//! This crate provides:
//!
//! - [`rngs::StdRng`] — a deterministic 64-bit PRNG (SplitMix64 stream
//!   feeding xoshiro256++), seedable via [`SeedableRng::seed_from_u64`];
//! - [`Rng`] — `gen_range` over integer ranges, `gen_bool`, and `gen` for a
//!   few primitive types;
//! - [`RngCore`] / [`SeedableRng`] — the core traits, enough for generic
//!   code written against rand 0.8.
//!
//! The stream is *not* the same as the real `StdRng` (ChaCha12); callers in
//! this workspace only rely on determinism and rough uniformity, never on
//! the exact sequence.

pub mod rngs;

pub use rngs::StdRng;

/// Core RNG interface: an infinite stream of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution:
/// full range for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges a value of type `T` can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1000..2000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let r: f64 = rng.gen();
            assert!((0.0..1.0).contains(&r));
        }
    }
}
