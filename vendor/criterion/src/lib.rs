//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) crate this workspace
//! uses: `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`), and `Bencher::{iter,
//! iter_batched}`.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a short
//! warm-up, then samples the routine in a time box and prints the mean and
//! best iteration time to stdout. That is enough to compare orders of
//! magnitude between strategies, which is what the paper-reproduction
//! benches are for. Wall-clock per bench function is bounded (~1s measure
//! budget, tunable with `CRITERION_MEASURE_MS`), so full `cargo bench` runs
//! stay tractable.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects per-iteration timings for one benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(max_samples: usize, budget: Duration) -> Self {
        Bencher { samples: Vec::new(), max_samples, budget }
    }

    /// Times `routine` repeatedly until the sample or time budget runs out.
    ///
    /// Each sample times a *batch* of calls and divides, sized so a batch
    /// takes ≥ ~10µs; otherwise the two `Instant::now()` calls around a
    /// nanosecond-scale routine would mostly measure timer overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as calibration (and catches panics early).
        let t = Instant::now();
        std_black_box(routine());
        let once = t.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_micros(10).as_nanos() / once.as_nanos()).clamp(1, 1024) as u32;
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    /// No batching here: `setup` must run between routine calls, and batched
    /// routines are heavyweight (index rebuilds, plan transforms), so timer
    /// overhead is noise.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let best = samples.iter().min().copied().unwrap_or_default();
    println!("{id:<40} mean {:>12?}   best {:>12?}   ({} samples)", mean, best, samples.len());
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Read once at construction so nothing touches the environment
        // while benchmarks (or this crate's own tests) are running.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000u64);
        Criterion { sample_size: 100, measure_budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample-count ceiling.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark wall-clock budget (real criterion's
    /// `measurement_time`).
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measure_budget = budget;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.measure_budget);
        f(&mut bencher);
        report(&id, &bencher.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}:");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let cap = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(cap, self.criterion.measure_budget);
        f(&mut bencher);
        report(&id, &bencher.samples);
        self
    }

    pub fn finish(self) {}
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(50))
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(50));
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
