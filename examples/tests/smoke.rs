//! Smoke tests for the example binaries: referencing each binary through
//! `CARGO_BIN_EXE_*` forces cargo to build it, and the fast ones are run to
//! completion. `lubm_session` generates a multi-university dataset and takes
//! tens of seconds in debug builds, so it is build-verified but only executed
//! under `--ignored`.

use std::process::Command;

fn run(path: &str) -> String {
    let out = Command::new(path).output().unwrap_or_else(|e| panic!("failed to spawn {path}: {e}"));
    assert!(
        out.status.success(),
        "{path} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_runs_to_completion() {
    let stdout = run(env!("CARGO_BIN_EXE_quickstart"));
    assert!(stdout.contains("Loaded 7 triples"), "unexpected output:\n{stdout}");
    assert!(stdout.contains("Executed plan:"), "unexpected output:\n{stdout}");
}

#[test]
fn optimizer_walkthrough_runs_to_completion() {
    run(env!("CARGO_BIN_EXE_optimizer_walkthrough"));
}

#[test]
fn engines_and_lbr_runs_to_completion() {
    run(env!("CARGO_BIN_EXE_engines_and_lbr"));
}

#[test]
fn lubm_session_binary_builds() {
    // Existence is enough: cargo built it because of the env! reference.
    assert!(std::path::Path::new(env!("CARGO_BIN_EXE_lubm_session")).exists());
}

#[test]
#[ignore = "generates a full LUBM dataset; slow in debug builds"]
fn lubm_session_runs_to_completion() {
    run(env!("CARGO_BIN_EXE_lubm_session"));
}
