//! An end-to-end LUBM session: generate a university dataset, run several of
//! the paper's benchmark queries under all four strategies, and print a
//! summary comparable to Figure 10.
//!
//! Run with: `cargo run -p uo_examples --release --bin lubm_session`

use uo_core::{run_query, Strategy};
use uo_datagen::{generate_lubm, lubm_queries, LubmConfig};
use uo_engine::{BgpEngine, BinaryJoinEngine, WcoEngine};

fn main() {
    let store = generate_lubm(&LubmConfig { universities: 1, ..LubmConfig::default() });
    println!("LUBM store: {} triples\n", store.len());

    let engines: Vec<(&str, Box<dyn BgpEngine>)> =
        vec![("wco", Box::new(WcoEngine::new())), ("binary", Box::new(BinaryJoinEngine::new()))];

    for q in lubm_queries().into_iter().filter(|q| q.group == 1) {
        println!("--- {} ---", q.id);
        for (name, engine) in &engines {
            for strategy in Strategy::ALL {
                let r = run_query(&store, engine.as_ref(), q.text, strategy).unwrap();
                println!(
                    "  {:>6} {:>5}: exec {:>12.3?}  results {}",
                    name,
                    strategy.label(),
                    r.exec_time,
                    r.results.len()
                );
            }
        }
    }
}
