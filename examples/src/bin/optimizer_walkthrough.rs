//! Walkthrough of the paper's optimizations on its own motivating examples
//! (Figures 6 and 7): shows the BE-tree before and after cost-driven
//! transformation, the Δ-driven decisions taken, and the effect of candidate
//! pruning on the join space.
//!
//! Run with: `cargo run -p uo_examples --release --bin optimizer_walkthrough`

use uo_core::{
    explain, multi_level_transform, prepare, run_query, CostModel, OptimizerConfig, Strategy,
};
use uo_datagen::{generate_dbpedia, DbpediaConfig};
use uo_engine::WcoEngine;

fn main() {
    let store = generate_dbpedia(&DbpediaConfig { articles: 5_000, ..DbpediaConfig::default() });
    let engine = WcoEngine::new();
    println!("DBpedia-style store: {} triples\n", store.len());

    // Figure 6: a selective BGP before an OPTIONAL with a low-selectivity
    // sameAs pattern — the inject transformation should fire.
    let fig6 = r#"
        PREFIX owl: <http://www.w3.org/2002/07/owl#>
        PREFIX dbo: <http://dbpedia.org/ontology/>
        PREFIX dbr: <http://dbpedia.org/resource/>
        SELECT ?x ?same WHERE {
            ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
            ?x dbo:wikiPageWikiLink ?other .
            OPTIONAL { ?x owl:sameAs ?same }
        }"#;

    let mut prepared = prepare(&store, fig6).expect("parses");
    println!("=== Figure 6 (favorable inject) — original BE-tree ===");
    println!("{}", explain(&prepared.tree, &prepared.vars, store.dictionary()));

    let cm = CostModel::new(&store, &engine);
    let outcome = multi_level_transform(&mut prepared.tree, &cm, OptimizerConfig::default());
    println!(
        "transformations: {} merge(s), {} inject(s), {} candidates evaluated\n",
        outcome.merges, outcome.injects, outcome.evaluated
    );
    println!("=== transformed BE-tree ===");
    println!("{}", explain(&prepared.tree, &prepared.vars, store.dictionary()));

    // Strategy comparison on the same query.
    println!("=== strategies on the Figure 6 query ===");
    for strategy in Strategy::ALL {
        let r = run_query(&store, &engine, fig6, strategy).unwrap();
        println!(
            "{:>5}: exec {:>10.3?}  transform {:>10.3?}  join space {:>12.0}  results {}",
            strategy.label(),
            r.exec_time,
            r.transform_time,
            r.join_space,
            r.results.len()
        );
    }
}
