//! Cross-checks every execution path on one OPTIONAL-heavy query: the two
//! BGP engines × four strategies, plus the LBR baseline — all must agree on
//! the result multiset (the repository's central correctness invariant).
//!
//! Run with: `cargo run -p uo_examples --release --bin engines_and_lbr`

use std::time::Instant;
use uo_core::{prepare, run_query, Strategy};
use uo_datagen::{generate_lubm, lubm_queries, LubmConfig};
use uo_engine::{BgpEngine, BinaryJoinEngine, WcoEngine};
use uo_lbr::evaluate_lbr;

fn main() {
    let store = generate_lubm(&LubmConfig::tiny());
    println!("LUBM store: {} triples\n", store.len());

    let q = lubm_queries().into_iter().find(|q| q.id == "q2.1").unwrap();
    println!("query {}:\n{}\n", q.id, q.text);

    let engines: Vec<(&str, Box<dyn BgpEngine>)> =
        vec![("wco", Box::new(WcoEngine::new())), ("binary", Box::new(BinaryJoinEngine::new()))];

    let mut reference: Option<Vec<Box<[u32]>>> = None;
    for (name, engine) in &engines {
        for strategy in Strategy::ALL {
            let r = run_query(&store, engine.as_ref(), q.text, strategy).unwrap();
            let canon = r.bag.canonicalized();
            match &reference {
                None => reference = Some(canon),
                Some(prev) => assert_eq!(prev, &canon, "{name}/{strategy} diverged"),
            }
            println!(
                "{name:>7}/{:<5} exec {:>10.3?}  results {}",
                strategy.label(),
                r.exec_time,
                r.results.len()
            );
        }
    }

    let prepared = prepare(&store, q.text).unwrap();
    let t = Instant::now();
    let (lbr_bag, stats) = evaluate_lbr(&prepared.tree, &store, prepared.vars.len());
    println!(
        "\n    LBR       exec {:>10.3?}  results {}  (relations {}, semijoins {}, pruned {})",
        t.elapsed(),
        lbr_bag.len(),
        stats.relations,
        stats.semijoins,
        stats.semijoin_pruned
    );
    assert_eq!(reference.unwrap(), lbr_bag.canonicalized(), "LBR diverged");
    println!("\nAll engines, strategies and LBR agree on the result multiset.");
}
