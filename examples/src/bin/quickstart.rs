//! Quickstart: load a small RDF dataset, run a SPARQL-UO query under the
//! paper's `full` strategy, and print the results and the optimized plan.
//!
//! Run with: `cargo run -p uo_examples --bin quickstart`

use uo_core::{run_query, Strategy};
use uo_engine::WcoEngine;
use uo_store::TripleStore;

fn main() {
    // A miniature version of Table 1's DBpedia excerpt.
    let data = r#"
<http://dbpedia.org/resource/George_W._Bush> <http://xmlns.com/foaf/0.1/name> "George Walker Bush"@en .
<http://dbpedia.org/resource/George_W._Bush> <http://www.w3.org/2000/01/rdf-schema#label> "George W. Bush"@en .
<http://dbpedia.org/resource/George_W._Bush> <http://dbpedia.org/ontology/wikiPageWikiLink> <http://dbpedia.org/resource/President_of_the_United_States> .
<http://dbpedia.org/resource/Bill_Clinton> <http://xmlns.com/foaf/0.1/name> "Bill Clinton"@en .
<http://dbpedia.org/resource/Bill_Clinton> <http://dbpedia.org/ontology/wikiPageWikiLink> <http://dbpedia.org/resource/President_of_the_United_States> .
<http://dbpedia.org/resource/Bill_Clinton> <http://dbpedia.org/property/birthDate> "1946-08-19"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://dbpedia.org/resource/Bill_Clinton> <http://www.w3.org/2002/07/owl#sameAs> <http://rdf.freebase.com/ns/Clinton_William_Jefferson_1946-> .
"#;

    let mut store = TripleStore::new();
    store.load_ntriples(data).expect("valid N-Triples");
    store.build();
    println!(
        "Loaded {} triples ({} entities, {} predicates).\n",
        store.len(),
        store.stats().entities,
        store.stats().predicates
    );

    // Figure 1's combined query: names via UNION (diverse representation),
    // sameAs via OPTIONAL (incomplete data).
    let query = r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        PREFIX owl: <http://www.w3.org/2002/07/owl#>
        PREFIX dbo: <http://dbpedia.org/ontology/>
        PREFIX dbr: <http://dbpedia.org/resource/>
        SELECT ?x ?name ?same WHERE {
            ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
            { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
            OPTIONAL { ?x owl:sameAs ?same }
        }"#;

    let engine = WcoEngine::new();
    let report = run_query(&store, &engine, query, Strategy::Full).expect("query parses");

    println!("Executed plan:\n{}", report.plan);
    println!("Results ({}):", report.results.len());
    for row in &report.results {
        let cells: Vec<String> = row
            .iter()
            .map(|t| t.as_ref().map(|t| t.to_string()).unwrap_or_else(|| "—".into()))
            .collect();
        println!("  {}", cells.join(" | "));
    }
    println!(
        "\nexec: {:?}, transform: {:?}, join space: {}",
        report.exec_time, report.transform_time, report.join_space
    );
}
