//! Example support crate (binaries live in `src/bin/`).
